open Relalg
module Formula = Condition.Formula
module Satisfiability = Condition.Satisfiability
module Norm = Condition.Norm
module Graph = Condition.Constraint_graph
module Substitute = Condition.Substitute
module Eq_solver = Condition.Eq_solver

(* Per-disjunct precomputation (Algorithm 4.1 step 1-3). *)
type disjunct_screen = {
  dead : bool;
      (* invariant part proven unsatisfiable: no tuple can activate it *)
  variant : Formula.atom list;
  invariant_str : Formula.atom list;
  apsp : Graph.apsp;
  node_of : Attr.t -> int option;
}

type screen = {
  qualified_schema : Schema.t;
  typing : Satisfiability.typing;
  disjuncts : disjunct_screen list;
  full_dnf : Formula.dnf; (* for the naive baseline *)
  attr_bounds : Attr.t -> (int * int) option;
}

let str_fragment_unsat atoms =
  match Eq_solver.solve atoms with
  | Eq_solver.Unsat -> true
  | Eq_solver.Sat | Eq_solver.Unknown -> false

(* Declared domain bounds become invariant constraints on the unbound
   variables (the paper assumes finite domains; declaring them lets the
   screen refute conditions such as C > 100 when C's domain ends at 50). *)
let bound_atoms_for ~attr_bounds vars =
  List.concat_map
    (fun v ->
      match attr_bounds v with
      | None -> []
      | Some (lo, hi) ->
        [
          Formula.atom (Formula.O_var v) Formula.Geq
            (Formula.O_const (Value.Int lo));
          Formula.atom (Formula.O_var v) Formula.Leq
            (Formula.O_const (Value.Int hi));
        ])
    vars

let prepare_disjunct ~typing ~bound ~attr_bounds conj =
  let split = Substitute.split_conjunction ~bound conj in
  (* If the whole disjunct is already unsatisfiable, no substitution can
     revive it: every update is irrelevant as far as it is concerned. *)
  let whole_unsat =
    Satisfiability.is_unsat
      (Satisfiability.conjunction ~typing
         (conj
         @ bound_atoms_for ~attr_bounds
             (List.sort_uniq Attr.compare (List.concat_map Formula.atom_vars conj))))
  in
  let fragment = Satisfiability.partition typing split.Substitute.invariant in
  (* Unbound variables of the whole disjunct that may appear as graph
     nodes: invariant variables plus the surviving variables of variant
     atoms. *)
  let unbound_int_vars =
    List.sort_uniq Attr.compare
      (List.filter
         (fun v -> (not (bound v)) && typing v = Value.Int_ty)
         (List.concat_map Formula.atom_vars conj))
  in
  let graph = Graph.create unbound_int_vars in
  let dead = ref (whole_unsat || fragment.Satisfiability.constant_false) in
  (* Domain bounds of the unbound variables join the invariant graph. *)
  List.iter
    (fun atom ->
      match Norm.normalize_atom atom with
      | Norm.Constraints cs -> List.iter (Graph.add_constraint graph) cs
      | Norm.Truth _ | Norm.Not_normalizable -> ())
    (bound_atoms_for ~attr_bounds unbound_int_vars);
  (* Load normalizable invariant constraints; disequalities are dropped
     (sound: fewer constraints can only under-detect negative cycles). *)
  List.iter
    (fun atom ->
      match Norm.normalize_atom atom with
      | Norm.Constraints cs -> List.iter (Graph.add_constraint graph) cs
      | Norm.Truth true -> ()
      | Norm.Truth false -> dead := true
      | Norm.Not_normalizable -> ())
    fragment.Satisfiability.int_atoms;
  (* A complete invariant check (with disequality expansion) can prove the
     disjunct dead even when the graph alone cannot. *)
  if
    Satisfiability.is_unsat
      (Satisfiability.int_fragment fragment.Satisfiability.int_atoms)
  then dead := true;
  if str_fragment_unsat fragment.Satisfiability.str_atoms then dead := true;
  let apsp = Graph.floyd_warshall graph in
  if apsp.Graph.negative then dead := true;
  {
    dead = !dead;
    variant = split.Substitute.variant;
    invariant_str = fragment.Satisfiability.str_atoms;
    apsp;
    node_of = (fun v -> (try Some (Graph.node_index graph v) with Not_found -> None));
  }

(* Bounds of any qualified attribute, looked up in its source's schema. *)
let attr_bounds_of ~lookup (spj : Query.Spj.t) =
  let schemas =
    List.map
      (fun (s : Query.Spj.source) ->
        (s.Query.Spj.alias, Query.Spj.qualified_schema lookup s))
      spj.Query.Spj.sources
  in
  fun v ->
    List.find_map
      (fun (_, schema) ->
        if Schema.mem schema v then Schema.bounds schema v else None)
      schemas

let prepare ~lookup ~spj ~alias =
  let source = Query.Spj.source_with_alias spj alias in
  let qualified_schema = Query.Spj.qualified_schema lookup source in
  let typing = Query.Spj.typing lookup spj in
  let bound v = Schema.mem qualified_schema v in
  let attr_bounds = attr_bounds_of ~lookup spj in
  let disjuncts =
    List.map
      (prepare_disjunct ~typing ~bound ~attr_bounds)
      spj.Query.Spj.condition_dnf
  in
  {
    qualified_schema;
    typing;
    disjuncts;
    full_dnf = spj.Query.Spj.condition_dnf;
    attr_bounds;
  }

let always_irrelevant screen = List.for_all (fun d -> d.dead) screen.disjuncts

(* Decide one substituted variant atom.  Returns [`False] when it kills the
   disjunct for this tuple, [`Edges] for graph constraints, [`Str] for a
   string atom to re-solve, [`Skip] when outside the decidable class. *)
let classify_substituted typing (a : Formula.atom) =
  let operand_ty = function
    | Formula.O_var v -> typing v
    | Formula.O_const v -> Value.ty_of v
  in
  match a.Formula.left, a.Formula.right with
  | Formula.O_const l, Formula.O_const r ->
    let r =
      match r, a.Formula.shift with
      | Value.Int k, s -> Value.Int (k + s)
      | (Value.Str _ as v), _ -> v
    in
    if Formula.eval_cmp a.Formula.cmp l r then `True else `False
  | _ -> (
    match operand_ty a.Formula.left, operand_ty a.Formula.right with
    | Value.Int_ty, Value.Int_ty -> (
      match Norm.normalize_atom a with
      | Norm.Constraints cs -> `Edges cs
      | Norm.Truth true -> `True
      | Norm.Truth false -> `False
      | Norm.Not_normalizable -> `Skip)
    | Value.Str_ty, Value.Str_ty ->
      (* The equality solver also refutes ordering cycles soundly. *)
      if a.Formula.shift <> 0 then `Skip else `Str a
    | Value.Int_ty, Value.Str_ty | Value.Str_ty, Value.Int_ty ->
      (* Mixed types never occur in well-typed views; fall back to the
         constant truth of the cross-type ordering. *)
      let int_on_left = operand_ty a.Formula.left = Value.Int_ty in
      let truth =
        match a.Formula.cmp with
        | Formula.Neq -> true
        | Formula.Eq -> false
        | Formula.Lt | Formula.Leq -> int_on_left
        | Formula.Gt | Formula.Geq -> not int_on_left
      in
      if truth then `True else `False)

(* Convert normalized zero-incident constraints to incremental edges. *)
let edges_of_constraints node_of cs =
  List.fold_left
    (fun acc (dc : Norm.dc) ->
      match acc with
      | None -> None
      | Some (extra_in, extra_out) -> (
        match dc.Norm.from_node, dc.Norm.to_node with
        | Norm.Var x, Norm.Zero -> (
          match node_of x with
          | Some i -> Some (extra_in, (i, dc.Norm.bound) :: extra_out)
          | None -> None)
        | Norm.Zero, Norm.Var x -> (
          match node_of x with
          | Some i -> Some ((i, dc.Norm.bound) :: extra_in, extra_out)
          | None -> None)
        | Norm.Zero, Norm.Zero -> if dc.Norm.bound < 0 then None else acc
        | Norm.Var _, Norm.Var _ ->
          (* cannot happen: substituted variant atoms keep at most one
             variable *)
          assert false))
    (Some ([], [])) cs

(* The Theorem 4.1 clause (or solver) that proved a tuple irrelevant —
   provenance reuses the diagnostic-code bands of lib/analysis: IVM011 is
   the static "always irrelevant" verdict, IVM001 the per-tuple
   unsatisfiability clauses. *)
type rule =
  | Invariant_unsat
  | Substituted_false
  | String_conflict
  | Negative_cycle

let all_rules =
  [ Invariant_unsat; Substituted_false; String_conflict; Negative_cycle ]

(* Doubles as a precedence: when several disjuncts die for different
   reasons, the per-tuple reasons outrank the static invariant one. *)
let rule_index = function
  | Invariant_unsat -> 0
  | Substituted_false -> 1
  | String_conflict -> 2
  | Negative_cycle -> 3

let rule_id = function
  | Invariant_unsat -> "IVM011:invariant-unsat"
  | Substituted_false -> "IVM001:substituted-false"
  | String_conflict -> "IVM001:string-conflict"
  | Negative_cycle -> "IVM001:negative-cycle"

let rule_description = function
  | Invariant_unsat ->
    "Theorem 4.1 via the invariant split (Definition 4.2): the condition's \
     invariant part is unsatisfiable, so every update to this source is \
     irrelevant"
  | Substituted_false ->
    "Theorem 4.1: substituting the tuple makes an atom of every surviving \
     disjunct constant-false"
  | String_conflict ->
    "Theorem 4.1: the substituted string equalities are contradictory \
     (equality-solver refutation)"
  | Negative_cycle ->
    "Theorem 4.1 via Algorithm 4.1: the substituted difference constraints \
     close a negative cycle in the constraint graph"

(* Why this disjunct cannot be satisfied by any extension of [tuple];
   [None] when it still can be — the single implementation behind both
   the boolean screen and the provenance explain. *)
let disjunct_refutation screen d tuple =
  if d.dead then Some Invariant_unsat
  else begin
    let lookup = Substitute.of_tuple screen.qualified_schema tuple in
    let substituted = List.map (Substitute.atom lookup) d.variant in
    let rec walk extra_in extra_out str_atoms = function
      | [] -> `Check (extra_in, extra_out, str_atoms)
      | a :: rest -> (
        match classify_substituted screen.typing a with
        | `False -> `Dead
        | `True | `Skip -> walk extra_in extra_out str_atoms rest
        | `Str s -> walk extra_in extra_out (s :: str_atoms) rest
        | `Edges cs -> (
          match edges_of_constraints d.node_of cs with
          | None -> `Dead (* a 0 - 0 <= negative constraint *)
          | Some (more_in, more_out) ->
            walk (more_in @ extra_in) (more_out @ extra_out) str_atoms rest))
    in
    match walk [] [] [] substituted with
    | `Dead -> Some Substituted_false
    | `Check (extra_in, extra_out, str_atoms) ->
      if
        str_atoms <> []
        && str_fragment_unsat (d.invariant_str @ str_atoms)
      then Some String_conflict
      else if Graph.negative_with_zero_edges d.apsp ~extra_in ~extra_out then
        Some Negative_cycle
      else None
  end

let disjunct_possibly_sat screen d tuple =
  disjunct_refutation screen d tuple = None

let relevant screen tuple =
  List.exists (fun d -> disjunct_possibly_sat screen d tuple) screen.disjuncts

(* [None] = relevant; [Some rule] = provably irrelevant, naming the
   highest-precedence refutation across the disjuncts.  Early-exits on
   the first live disjunct exactly like [relevant]. *)
let explain screen tuple =
  let rec go best = function
    | [] -> Some best
    | d :: rest -> (
      match disjunct_refutation screen d tuple with
      | None -> None
      | Some r -> go (if rule_index r > rule_index best then r else best) rest)
  in
  go Invariant_unsat screen.disjuncts

let relevant_naive screen tuple =
  let lookup = Substitute.of_tuple screen.qualified_schema tuple in
  let substituted = Substitute.dnf lookup screen.full_dnf in
  let with_bounds =
    List.map
      (fun conj ->
        conj
        @ bound_atoms_for ~attr_bounds:screen.attr_bounds
            (List.sort_uniq Attr.compare
               (List.concat_map Formula.atom_vars conj)))
      substituted
  in
  not
    (Satisfiability.is_unsat
       (Satisfiability.dnf ~typing:screen.typing with_bounds))

(* Tuples per parallel screening task.  Below two chunks the split
   cannot win, so small update sets always take the sequential path. *)
let screen_chunk_size = 512

let n_rules = List.length all_rules

let screen_delta_explain ?pool screen (d : Delta.t) =
  let kept = ref 0 and dropped = ref 0 in
  let rule_counts = Array.make n_rules 0 in
  let filter r =
    let out = Relation.create (Relation.schema r) in
    let sequential () =
      Relation.iter
        (fun t c ->
          match explain screen t with
          | None ->
            incr kept;
            Relation.update out t c
          | Some rule ->
            incr dropped;
            rule_counts.(rule_index rule) <- rule_counts.(rule_index rule) + 1)
        r
    in
    (match pool with
    | Some pool
      when Exec.Pool.size pool > 1
           && Relation.cardinal r >= 2 * screen_chunk_size ->
      (* Screening is a pure per-tuple check (Theorem 4.1 reads only the
         precomputed screen), so chunks are independent; each returns
         its kept sublist and per-rule drop counts that merge
         sequentially. *)
      let chunks =
        Exec.Pool.chunks ~size:screen_chunk_size (Relation.elements r)
      in
      Exec.Pool.map_list pool
        (fun chunk ->
          let counts = Array.make n_rules 0 in
          let keep =
            List.fold_left
              (fun keep (t, c) ->
                match explain screen t with
                | None -> (t, c) :: keep
                | Some rule ->
                  counts.(rule_index rule) <- counts.(rule_index rule) + 1;
                  keep)
              [] chunk
          in
          (keep, counts))
        chunks
      |> List.iter (fun (keep, counts) ->
             Array.iteri
               (fun i n ->
                 dropped := !dropped + n;
                 rule_counts.(i) <- rule_counts.(i) + n)
               counts;
             List.iter
               (fun (t, c) ->
                 incr kept;
                 Relation.update out t c)
               keep)
    | _ -> sequential ());
    out
  in
  let screened =
    { Delta.inserts = filter d.Delta.inserts; deletes = filter d.Delta.deletes }
  in
  let rules =
    List.filter_map
      (fun rule ->
        let n = rule_counts.(rule_index rule) in
        if n > 0 then Some (rule, n) else None)
      all_rules
  in
  (* Bulk counter updates after the per-tuple loop: the hot path stays
     free of telemetry except for this one guarded block of adds. *)
  if Obs.Control.enabled () then begin
    Obs.Metrics.add "ivm_screen_kept_total" !kept;
    Obs.Metrics.add "ivm_screen_dropped_total" !dropped;
    List.iter
      (fun (rule, n) ->
        Obs.Metrics.add "ivm_screen_rule_dropped_total"
          ~labels:[ ("rule", rule_id rule) ]
          n)
      rules
  end;
  (screened, (!kept, !dropped), rules)

let screen_delta_stats ?pool screen d =
  let screened, counts, _rules = screen_delta_explain ?pool screen d in
  (screened, counts)

let screen_delta ?pool screen d = fst (screen_delta_stats ?pool screen d)

let combined_relevant ~lookup ~spj tuples =
  let typing = Query.Spj.typing lookup spj in
  let attr_bounds = attr_bounds_of ~lookup spj in
  let lookups =
    List.map
      (fun (alias, tuple) ->
        let source = Query.Spj.source_with_alias spj alias in
        Substitute.of_tuple (Query.Spj.qualified_schema lookup source) tuple)
      tuples
  in
  let combined = Substitute.combine lookups in
  let substituted = Substitute.dnf combined spj.Query.Spj.condition_dnf in
  let with_bounds =
    List.map
      (fun conj ->
        conj
        @ bound_atoms_for ~attr_bounds
            (List.sort_uniq Attr.compare
               (List.concat_map Formula.atom_vars conj)))
      substituted
  in
  not (Satisfiability.is_unsat (Satisfiability.dnf ~typing with_bounds))
