open Relalg
module Cert = Analysis.Check_self_maintain

exception Base_read_detected of { view : string; reads : int }

let () =
  Printexc.register_printer (function
    | Base_read_detected { view; reads } ->
      Some
        (Printf.sprintf
           "Self_maintain.Base_read_detected(view %s: %d base-relation \
            read(s) under a zero-read certificate)"
           view reads)
    | _ -> None)

module Tuple_table = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

(* Auxiliary key index over the view's contents: key signature (the view
   positions recovering the deleted relation's key) -> live tuples with
   their counters.  Unlike Relalg.Index there is no process-wide registry:
   the index belongs to one drain plan, and when the contents' storage
   identity changes (recompute/restore) the stale index is deactivated and
   dropped, so nothing leaks across rebuilds. *)
type kindex = {
  key_of : Tuple.t -> Tuple.t;
  buckets : int Tuple_table.t Tuple_table.t;
  mutable active : bool;
}

type drain_plan = {
  sig_base : int array;  (* deleted-tuple positions forming the signature *)
  sig_outputs : int array;  (* view-tuple positions, aligned with sig_base *)
  consts : (int * Value.t) list;  (* deleted-tuple position -> pinned value *)
  mutable index : (int * kindex) option;  (* storage id it tracks *)
}

type single = {
  s_relation : string;
  s_qualified : Schema.t;
  s_positions : int array;  (* output position -> source tuple position *)
  s_dnf : Condition.Formula.dnf;
}

type t = {
  view_name : string;
  relations : string list;
  single : single option;
  drains : (string * drain_plan list) list;
}

let of_spj ~name ~keys ~lookup (spj : Query.Spj.t) =
  let cert = Cert.analyze ~keys ~lookup spj in
  let relations =
    List.sort_uniq String.compare
      (List.map (fun (s : Query.Spj.source) -> s.Query.Spj.relation)
         spj.Query.Spj.sources)
  in
  let single =
    match (cert.Cert.single_source, spj.Query.Spj.sources) with
    | Some (_, relation), [ source ] ->
      let qualified = Query.Spj.qualified_schema lookup source in
      Some
        {
          s_relation = relation;
          s_qualified = qualified;
          s_positions =
            Array.of_list
              (List.map
                 (fun (_, q) -> Schema.position qualified q)
                 spj.Query.Spj.projection);
          s_dnf = spj.Query.Spj.condition_dnf;
        }
    | _ -> None
  in
  let drains =
    if single <> None then []
    else
      List.filter_map
        (fun relation ->
          match Cert.delete_plans cert relation with
          | None -> None
          | Some plans ->
            let compile (p : Cert.delete_plan) =
              let outputs, consts =
                List.partition_map
                  (fun (pos, binding) ->
                    match binding with
                    | Cert.From_output j -> Either.Left (pos, j)
                    | Cert.Pinned v -> Either.Right (pos, v))
                  p.Cert.bindings
              in
              {
                sig_base = Array.of_list (List.map fst outputs);
                sig_outputs = Array.of_list (List.map snd outputs);
                consts;
                index = None;
              }
            in
            Some (relation, List.map compile plans))
        relations
  in
  if single = None && drains = [] then None
  else Some { view_name = name; relations; single; drains }

let insertable t =
  match t.single with
  | Some s -> [ s.s_relation ]
  | None -> []

let deletable t =
  match t.single with
  | Some s -> [ s.s_relation ]
  | None -> List.map fst t.drains

let covers_deletes t relation =
  List.mem relation (deletable t)

let covers_inserts t relation =
  List.mem relation (insertable t)

let applies t ~net =
  let touched =
    List.filter
      (fun (relation, (inserts, deletes)) ->
        List.mem relation t.relations && (inserts <> [] || deletes <> []))
      net
  in
  touched <> []
  && List.for_all
       (fun (relation, (inserts, deletes)) ->
         (inserts = [] || covers_inserts t relation)
         && (deletes = [] || covers_deletes t relation))
       touched

(* ------------------------------------------------------------------ *)
(* delta evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let index_apply idx tuple delta =
  if idx.active then begin
    let key = idx.key_of tuple in
    let bucket =
      match Tuple_table.find_opt idx.buckets key with
      | Some bucket -> bucket
      | None ->
        let bucket = Tuple_table.create 4 in
        Tuple_table.replace idx.buckets key bucket;
        bucket
    in
    let current = Option.value ~default:0 (Tuple_table.find_opt bucket tuple) in
    let updated = current + delta in
    if updated <= 0 then begin
      Tuple_table.remove bucket tuple;
      if Tuple_table.length bucket = 0 then Tuple_table.remove idx.buckets key
    end
    else Tuple_table.replace bucket tuple updated
  end

let ensure_index plan contents =
  let storage = Relation.storage_id contents in
  match plan.index with
  | Some (id, idx) when id = storage -> idx
  | stale ->
    (match stale with
    | Some (_, idx) -> idx.active <- false
    | None -> ());
    let positions = plan.sig_outputs in
    let idx =
      {
        key_of = (fun tuple -> Array.map (fun j -> tuple.(j)) positions);
        buckets = Tuple_table.create (max 16 (Relation.cardinal contents));
        active = true;
      }
    in
    Relation.iter (fun tuple c -> index_apply idx tuple c) contents;
    Relation.subscribe contents (index_apply idx);
    plan.index <- Some (storage, idx);
    idx

(* All derivations of a view tuple share the one base tuple whose key the
   view recovers, so a matching deletion drains the tuple at its full
   multiplicity.  [drain] dedupes across plans and relations: a view tuple
   killed from two sides dies once. *)
let drain_matches plan contents deleted drain =
  if
    List.for_all
      (fun (pos, v) -> Value.equal deleted.(pos) v)
      plan.consts
  then begin
    let idx = ensure_index plan contents in
    let key = Array.map (fun pos -> deleted.(pos)) plan.sig_base in
    match Tuple_table.find_opt idx.buckets key with
    | None -> ()
    | Some bucket -> Tuple_table.iter drain bucket
  end

let delta t ~contents ~net =
  let schema = Relation.schema contents in
  let inserts = ref [] in
  let direct_deletes = ref [] in
  let drained : int Tuple_table.t = Tuple_table.create 16 in
  List.iter
    (fun (relation, (ins, dels)) ->
      if List.mem relation t.relations then
        match t.single with
        | Some s when String.equal s.s_relation relation ->
          let project tuple =
            Array.map (fun p -> tuple.(p)) s.s_positions
          in
          let passes tuple =
            let sub = Condition.Substitute.of_tuple s.s_qualified tuple in
            Condition.Formula.eval_dnf
              (fun a ->
                match sub a with
                | Some v -> v
                | None ->
                  invalid_arg
                    (Printf.sprintf
                       "Self_maintain.delta: unbound attribute %s" a))
              s.s_dnf
          in
          List.iter
            (fun tuple ->
              if passes tuple then inserts := (project tuple, 1) :: !inserts)
            ins;
          List.iter
            (fun tuple ->
              if passes tuple then
                direct_deletes := (project tuple, 1) :: !direct_deletes)
            dels
        | _ -> (
          match List.assoc_opt relation t.drains with
          | None -> () (* not covered; [applies] rules this out *)
          | Some plans ->
            List.iter
              (fun deleted ->
                List.iter
                  (fun plan ->
                    drain_matches plan contents deleted (fun tuple count ->
                        if not (Tuple_table.mem drained tuple) then
                          Tuple_table.replace drained tuple count))
                  plans)
              dels))
    net;
  let deletes =
    Tuple_table.fold (fun tuple count acc -> (tuple, count) :: acc) drained
      !direct_deletes
  in
  {
    Delta.inserts = Relation.of_counted schema !inserts;
    deletes = Relation.of_counted schema deletes;
  }
