open Relalg
module Formula = Condition.Formula

type tagged = {
  schema : Schema.t;
  rows : (Tuple.t * Tag.t * int) list;
}

let of_relation r =
  {
    schema = Relation.schema r;
    rows = Relation.fold (fun t c acc -> (t, Tag.Old, c) :: acc) r [];
  }

let of_parts ~old_part ~(delta : Delta.t) =
  let tag_rows tag r acc =
    Relation.fold (fun t c acc -> (t, tag, c) :: acc) r acc
  in
  {
    schema = Relation.schema old_part;
    rows =
      tag_rows Tag.Old old_part
        (tag_rows Tag.Insert delta.Delta.inserts
           (tag_rows Tag.Delete delta.Delta.deletes []));
  }

let product a b =
  let schema = Schema.concat a.schema b.schema in
  let rows =
    List.concat_map
      (fun (ta, taga, ca) ->
        List.filter_map
          (fun (tb, tagb, cb) ->
            match Tag.join taga tagb with
            | None -> None
            | Some tag -> Some (Tuple.concat ta tb, tag, ca * cb))
          b.rows)
      a.rows
  in
  { schema; rows }

let select dnf tagged =
  let schema = tagged.schema in
  (* Resolve every condition variable to its column once; the per-row
     lookup is then a hash probe instead of a linear schema scan. *)
  let positions = Hashtbl.create 8 in
  List.iter
    (fun v ->
      if not (Hashtbl.mem positions v) then
        Hashtbl.replace positions v (Schema.position schema v))
    (List.concat_map (List.concat_map Formula.atom_vars) dnf);
  let current = ref [||] in
  let lookup v = Tuple.get !current (Hashtbl.find positions v) in
  let rows =
    List.filter
      (fun (t, tag, _) ->
        current := t;
        ignore (Tag.select tag);
        Formula.eval_dnf lookup dnf)
      tagged.rows
  in
  { tagged with rows }

module Keyed = Hashtbl.Make (struct
  type t = Tuple.t * Tag.t

  let equal (t1, g1) (t2, g2) = Tuple.equal t1 t2 && Tag.equal g1 g2
  let hash (t, g) = (Tuple.hash t * 7) + Hashtbl.hash g
end)

let coalesce tagged =
  let table = Keyed.create (List.length tagged.rows) in
  List.iter
    (fun (t, tag, c) ->
      let key = (t, tag) in
      let current = Option.value ~default:0 (Keyed.find_opt table key) in
      Keyed.replace table key (current + c))
    tagged.rows;
  {
    tagged with
    rows = Keyed.fold (fun (t, tag) c acc -> (t, tag, c) :: acc) table [];
  }

let project projection tagged =
  let positions =
    Array.of_list
      (List.map (fun (_, q) -> Schema.position tagged.schema q) projection)
  in
  let out_schema =
    Schema.make
      (List.map
         (fun (out, q) -> (out, Schema.ty tagged.schema q))
         projection)
  in
  coalesce
    {
      schema = out_schema;
      rows =
        List.map
          (fun (t, tag, c) ->
            (Tuple.project positions t, Tag.project tag, c))
          tagged.rows;
    }

type result = {
  delta : Delta.t;
  unchanged : Relation.t;
}

let eval_spj ~(spj : Query.Spj.t) ~inputs =
  let tagged_of_alias alias =
    match List.assoc_opt alias inputs with
    | Some t -> t
    | None ->
      invalid_arg
        (Printf.sprintf "Tagged_eval.eval_spj: missing input for alias %S"
           alias)
  in
  let joined =
    match spj.Query.Spj.sources with
    | [] -> invalid_arg "Tagged_eval.eval_spj: no sources"
    | first :: rest ->
      List.fold_left
        (fun acc source ->
          product acc (tagged_of_alias source.Query.Spj.alias))
        (tagged_of_alias first.Query.Spj.alias)
        rest
  in
  let selected = select spj.Query.Spj.condition_dnf joined in
  let projected = project spj.Query.Spj.projection selected in
  let delta = Delta.empty projected.schema in
  let unchanged = Relation.create projected.schema in
  List.iter
    (fun (t, tag, c) ->
      match (tag : Tag.t) with
      | Tag.Insert -> Relation.update delta.Delta.inserts t c
      | Tag.Delete -> Relation.update delta.Delta.deletes t c
      | Tag.Old -> Relation.update unchanged t c)
    projected.rows;
  { delta; unchanged }
