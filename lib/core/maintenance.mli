(** Per-transaction view maintenance (Algorithm 5.1 end to end).

    The protocol mirrors the paper's assumptions (Section 5): maintenance
    runs as the final step of a committing transaction, with the
    pre-transaction base relations, the net update sets, the view
    definition and the current view contents available.

    Phases of {!process}:
    + compute the transaction's net effect;
    + install the deletions into the base relations — they are then in the
      r° = r - d_r state every truth-table row expects;
    + for every differential view: screen the update sets against
      Theorem 4.1, evaluate the surviving truth-table rows, apply the view
      delta;
    + install the insertions;
    + recompute any view maintained by the complete re-evaluation
      baseline. *)

open Relalg

type strategy =
  | Differential
  | Recompute  (** the paper's baseline: re-evaluate from scratch *)
  | Adaptive
      (** choose per transaction with {!Advisor}: differential for small
          update sets, recomputation past the crossover of E9,
          self-maintenance when the certificate covers the transaction *)
  | Self_maintain
      (** compute the delta from the update sets plus the current
          materialization with zero base-relation reads (probe-enforced),
          whenever the view's {!Self_maintain} certificate covers the
          transaction; falls back to [Differential] when it does not *)

type options = {
  strategy : strategy;
  screen : bool;  (** filter irrelevant updates first (Algorithm 4.1) *)
  reuse : bool;  (** share partial joins across truth-table rows *)
  order : Query.Planner.join_order;
  join_impl : Query.Planner.join_impl;
  shard_min : int;
      (** hash-shard a truth-table row's largest operand across the
          pool when it has at least this many distinct tuples (see
          {!Delta_eval.eval}); only takes effect when maintenance runs
          with a pool of size > 1 *)
}

(** Differential, with screening, greedy join order, hash joins, no row
    reuse, sharding past {!Delta_eval.default_shard_min} tuples. *)
val default_options : options

(** [resolve_strategy options view ~db ~net] resolves [Adaptive] and
    [Self_maintain] into a concrete strategy for this transaction
    ([Self_maintain] survives only when the certificate applies). *)
val resolve_strategy :
  options ->
  View.t ->
  db:Database.t ->
  net:Transaction.net ->
  strategy

(** Like {!resolve_strategy} but always evaluates {!Advisor.decide} and
    returns the decision, so callers can record the prediction against
    the measured cost even when the strategy is forced. *)
val resolve_with_decision :
  options ->
  View.t ->
  db:Database.t ->
  net:Transaction.net ->
  strategy * Advisor.decision

val strategy_name : strategy -> string

(** The calibration arm a concrete strategy executes ([Adaptive] has
    already been resolved by the time a sample is taken). *)
val arm_of_strategy : strategy -> Advisor.arm

(** [self_maintain_applies view ~net]: the view carries a certificate and
    it covers this transaction's update sets. *)
val self_maintain_applies : View.t -> net:Transaction.net -> bool

(** Why a requested [Self_maintain] cannot run on this transaction —
    either the view has no certificate or the certificate does not cover
    the update sets; [None] when self-maintenance applies.  Feeds the
    provenance [fallback] field. *)
val self_maintain_fallback : View.t -> net:Transaction.net -> string option

type report = {
  view_name : string;
  strategy_used : strategy;
      (** always [Differential], [Recompute] or [Self_maintain] *)
  screened_out : int;  (** update tuples proven irrelevant *)
  screened_kept : int;
  screen_rules : (string * int) list;
      (** dropped-tuple counts per screening rule that fired
          ({!Irrelevance.rule_id} strings, plus ["IVM051:keyed-drain"] for
          self-maintained deletions); empty when nothing was screened *)
  rows_evaluated : int;
  delta_inserts : int;  (** counted tuples inserted into the view *)
  delta_deletes : int;
  groups_touched : int;
      (** aggregate views: distinct groups whose accumulators moved *)
  rescans : int;
      (** aggregate views: groups rescanned because a MIN/MAX extremum's
          support drained to zero *)
  screen_ns : int;  (** wall time in Theorem 4.1 screening *)
  eval_ns : int;  (** wall time evaluating truth-table rows *)
  apply_ns : int;  (** wall time installing the view delta *)
  total_ns : int;  (** whole maintenance of this view, including apply *)
  advisor : Advisor.decision option;
      (** the cost-model prediction for this transaction, when it ran *)
  fallback : string option;
      (** set when a requested [Self_maintain] degraded to the strategy
          actually used ({!self_maintain_fallback}) *)
  delta : Delta.t option;
      (** the view delta actually applied to the materialization (outer
          delta for aggregate views; present for recomputes only when
          requested with [want_delta]).  The manager feeds it to
          dependent views as their input transaction. *)
}

(** A zeroed report (timing fields included). *)
val empty_report : view_name:string -> strategy_used:strategy -> report

val pp_report : Format.formatter -> report -> unit

(** Feed a finished report into the [ivm_*] metrics of the default
    {!Obs.Metrics} registry; no-op while telemetry is off. *)
val record_report : report -> unit

(** [maintain_differential ~options ~decision view ~db ~net] runs
    {!view_delta} and applies the result to the view, returning the report
    with [apply_ns]/[total_ns] filled, metrics recorded, and — when
    [decision] is given — an {!Advisor.record} calibration sample taken.
    [db] must be in the deletions-applied intermediate state.  With
    [journal], every counter update on the view's materialization is
    recorded for rollback. *)
val maintain_differential :
  options:options ->
  ?pool:Exec.Pool.t ->
  ?journal:Resilience.Journal.t ->
  ?fallback:string ->
  decision:Advisor.decision option ->
  View.t ->
  db:Database.t ->
  net:Transaction.net ->
  report

(** Self-maintenance counterpart of {!maintain_differential}: computes the
    view delta from [net] plus the current materialization under the
    {!Database.probe_reads} probe and applies it.  No [db] argument — the
    whole point.  Precondition: the view's certificate covers [net]
    (callers resolve with {!resolve_strategy} first).
    @raise Self_maintain.Base_read_detected when the evaluation touched the
    base-relation catalog after all (a certificate bug; fails the commit
    loudly instead of corrupting the view). *)
val maintain_self_maintain :
  ?journal:Resilience.Journal.t ->
  decision:Advisor.decision option ->
  View.t ->
  net:Transaction.net ->
  report

(** Recompute counterpart of {!maintain_differential}; [db] must be in the
    final (insertions-applied) state.  With [journal], a checkpoint of
    the materialization is recorded for rollback.  With [want_delta],
    the pre-state is copied and the report carries the
    {!Delta.between} of the recompute, for dependent views. *)
val maintain_recompute :
  ?journal:Resilience.Journal.t ->
  ?want_delta:bool ->
  decision:Advisor.decision option ->
  View.t ->
  db:Database.t ->
  report

(** [view_delta ?options ?pool view ~db ~net] computes the view delta.
    [db] must be in the deletions-applied intermediate state and [net] is
    the transaction's net effect.  Does not modify anything.  [pool]
    parallelizes the screening of large update sets
    ({!Irrelevance.screen_delta}). *)
val view_delta :
  ?options:options ->
  ?pool:Exec.Pool.t ->
  View.t ->
  db:Database.t ->
  net:Transaction.net ->
  Delta.t * report

(** [process ?options ?pool ~views ~db txn] runs the whole commit: nets the
    transaction, updates the base relations, and maintains every view.
    Per-view options override the common ones.  With a [pool] of size > 1,
    views are maintained in parallel (they are data-independent once the
    net effect is computed: each task only reads base relations and writes
    its own materialization); results are identical to the sequential
    order.
    @raise Transaction.Invalid on invalid transactions (nothing is
    modified in that case). *)
val process :
  ?options:options ->
  ?options_for:(string -> options option) ->
  ?pool:Exec.Pool.t ->
  views:View.t list ->
  db:Database.t ->
  Transaction.t ->
  report list

(** [apply_deletes db net] / [apply_inserts db net] install one half of the
    net effect (exposed for the snapshot-refresh path).  With [journal],
    every counter update is recorded for rollback. *)
val apply_deletes :
  ?journal:Resilience.Journal.t -> Database.t -> Transaction.net -> unit

val apply_inserts :
  ?journal:Resilience.Journal.t -> Database.t -> Transaction.net -> unit
