open Relalg

type t = {
  name : string;
  spj : Query.Spj.t;
  schema : Schema.t;
  mutable state : Relation.t;
  lookup : string -> Schema.t;
  qualified : (string * Schema.t) list; (* alias -> qualified schema *)
  screens : (string, Irrelevance.screen) Hashtbl.t;
  duplicate_free : bool;
  keys : Query.Keys.t;
  self_maintain : Self_maintain.t option;
}

let define ?(minimize = true) ?(keys = []) ~name ~db expr =
  let lookup relation = Relation.schema (Database.find db relation) in
  let spj = Query.Spj.compile lookup expr in
  let spj = if minimize then Query.Tableau.minimize spj else spj in
  let duplicate_free =
    keys <> [] && Query.Keys.projection_preserves_keys ~keys spj
  in
  let schema = Query.Spj.output_schema lookup spj in
  let qualified =
    List.map
      (fun s -> (s.Query.Spj.alias, Query.Spj.qualified_schema lookup s))
      spj.Query.Spj.sources
  in
  {
    name;
    spj;
    schema;
    state = Query.Spj.eval lookup db spj;
    lookup;
    qualified;
    screens = Hashtbl.create 4;
    duplicate_free;
    keys;
    self_maintain = Self_maintain.of_spj ~name ~keys ~lookup spj;
  }

let name v = v.name
let spj v = v.spj
let schema v = v.schema
let contents v = v.state
let duplicate_free v = v.duplicate_free
let lookup v = v.lookup
let self_maintain v = v.self_maintain

let qualified_schema v ~alias =
  match List.assoc_opt alias v.qualified with
  | Some s -> s
  | None -> raise Not_found

let screen_for v ~alias =
  match Hashtbl.find_opt v.screens alias with
  | Some screen -> screen
  | None ->
    let screen = Irrelevance.prepare ~lookup:v.lookup ~spj:v.spj ~alias in
    Hashtbl.replace v.screens alias screen;
    screen

let lint ?keys v =
  let keys = Option.value keys ~default:v.keys in
  Analysis.Analyzer.run ~keys ~lookup:v.lookup v.spj

let apply_delta v delta = Delta.apply delta v.state
let recompute v db = v.state <- Query.Spj.eval v.lookup db v.spj
let restore v saved = v.state <- saved
let consistent v db = Relation.equal v.state (Query.Spj.eval v.lookup db v.spj)

let pp ppf v =
  Format.fprintf ppf "@[<v 2>view %s = %a@,%a@]" v.name Query.Spj.pp v.spj
    Relation.pp v.state
