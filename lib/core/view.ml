open Relalg

type t = {
  name : string;
  expr : Query.Expr.t;
  spj : Query.Spj.t; (* the inner SPJ form for aggregate views *)
  schema : Schema.t;
  state : Relation.t;
  grouped : Grouped.t option;
  lookup : string -> Schema.t;
  qualified : (string * Schema.t) list; (* alias -> qualified schema *)
  screens : (string, Irrelevance.screen) Hashtbl.t;
  duplicate_free : bool;
  keys : Query.Keys.t;
  self_maintain : Self_maintain.t option;
}

let define ?(minimize = true) ?(keys = []) ~name ~db expr =
  let lookup relation = Relation.schema (Database.find db relation) in
  let spec, inner_expr =
    match Query.Expr.aggregate expr with
    | Some (spec, inner) -> (Some spec, inner)
    | None -> (None, expr)
  in
  let spj = Query.Spj.compile lookup inner_expr in
  let spj = if minimize then Query.Tableau.minimize spj else spj in
  let inner_state = Query.Spj.eval lookup db spj in
  let grouped = Option.map (fun spec -> Grouped.create spec ~inner:inner_state) spec in
  let duplicate_free =
    match grouped with
    | Some _ ->
      (* one multiplicity-1 row per non-empty group, by construction *)
      true
    | None -> keys <> [] && Query.Keys.projection_preserves_keys ~keys spj
  in
  let schema, state =
    match grouped with
    | Some g -> (Grouped.schema g, Grouped.render g)
    | None -> (Query.Spj.output_schema lookup spj, inner_state)
  in
  let qualified =
    List.map
      (fun s -> (s.Query.Spj.alias, Query.Spj.qualified_schema lookup s))
      spj.Query.Spj.sources
  in
  {
    name;
    expr;
    spj;
    schema;
    state;
    grouped;
    lookup;
    qualified;
    screens = Hashtbl.create 4;
    duplicate_free;
    keys;
    self_maintain =
      (match grouped with
      | Some _ -> None
      | None -> Self_maintain.of_spj ~name ~keys ~lookup spj);
  }

let name v = v.name
let expr v = v.expr
let spj v = v.spj
let schema v = v.schema
let contents v = v.state
let grouped v = v.grouped
let aggregate v = Option.map Grouped.spec v.grouped
let duplicate_free v = v.duplicate_free
let lookup v = v.lookup
let self_maintain v = v.self_maintain

let qualified_schema v ~alias =
  match List.assoc_opt alias v.qualified with
  | Some s -> s
  | None -> raise Not_found

let screen_for v ~alias =
  match Hashtbl.find_opt v.screens alias with
  | Some screen -> screen
  | None ->
    let screen = Irrelevance.prepare ~lookup:v.lookup ~spj:v.spj ~alias in
    Hashtbl.replace v.screens alias screen;
    screen

let lint ?keys v =
  let keys = Option.value keys ~default:v.keys in
  Analysis.Analyzer.run ~keys ~lookup:v.lookup v.spj

let apply_delta v delta = Delta.apply delta v.state

(* Recompute and restore mutate the materialization in place (and, for
   aggregate views, the inner materialization too): the contents object
   may be registered in a manager catalog as the input of dependent
   views, so replacing it wholesale would orphan those registrations. *)
let recompute v db =
  let fresh = Query.Spj.eval v.lookup db v.spj in
  match v.grouped with
  | None -> Relation.assign ~into:v.state ~src:fresh
  | Some g ->
    Relation.assign ~into:(Grouped.inner g) ~src:fresh;
    Grouped.rebuild g;
    Relation.assign ~into:v.state ~src:(Grouped.render g)

let checkpoint v =
  let saved_state = Relation.copy v.state in
  match v.grouped with
  | None -> fun () -> Relation.assign ~into:v.state ~src:saved_state
  | Some g ->
    let saved_inner = Relation.copy (Grouped.inner g) in
    fun () ->
      Relation.assign ~into:(Grouped.inner g) ~src:saved_inner;
      Grouped.rebuild g;
      Relation.assign ~into:v.state ~src:saved_state

let restore v saved =
  Relation.assign ~into:v.state ~src:saved;
  match v.grouped with
  | None -> ()
  | Some g ->
    (* Outer-only restores are not enough for aggregate views; callers
       there use {!checkpoint}.  Rebuilding from the (unchanged) inner
       keeps the group accumulators honest either way. *)
    Grouped.rebuild g

let consistent v db =
  let inner_now = Query.Spj.eval v.lookup db v.spj in
  match v.grouped with
  | None -> Relation.equal v.state inner_now
  | Some g ->
    Relation.equal (Grouped.inner g) inner_now
    && Relation.equal v.state (Query.Aggregate.eval (Grouped.spec g) inner_now)

let pp ppf v =
  Format.fprintf ppf "@[<v 2>view %s = %a@,%a@]" v.name Query.Expr.pp v.expr
    Relation.pp v.state
