(** Runtime side of the self-maintainability certificate.

    {!Analysis.Check_self_maintain} proves, per (relation, insert/delete)
    pair, that a view's delta is computable from the update set plus the
    current materialization.  This module compiles the proof into an
    executable plan and evaluates it with {e zero base-relation reads}:

    - single-source views apply [pi_X(sigma_C({t}))] to each update tuple
      (the condition is evaluated by substitution, the projection by
      position);
    - multi-source deletions recover the deleted relation's candidate key
      off each view tuple (projected outputs and pinned constants) and
      drain every matching view tuple at its full multiplicity — all
      derivations of a view tuple share the single base tuple carrying
      that key, so they die together.

    The keyed drain is backed by a small auxiliary index over the view's
    contents (key signature -> tuples), maintained incrementally through
    {!Relalg.Relation.subscribe} and rebuilt lazily when the contents'
    storage identity changes (recompute / restore install fresh storage).

    The zero-reads claim is enforced, not assumed: {!Maintenance} runs
    {!delta} under {!Relalg.Database.probe_reads} and raises
    {!Base_read_detected} on any catalog access, so a wrong proof fails
    loudly instead of silently corrupting the view. *)

open Relalg

type t

exception Base_read_detected of { view : string; reads : int }

(** [of_spj ~name ~keys ~lookup spj] compiles the certificate, or [None]
    when no update class is provably self-maintainable.  Declared [keys]
    are trusted (as in {!Query.Keys}). *)
val of_spj :
  name:string ->
  keys:Query.Keys.t ->
  lookup:(string -> Schema.t) ->
  Query.Spj.t ->
  t option

(** Relations whose insertions / deletions the certificate covers. *)
val insertable : t -> string list

val deletable : t -> string list

(** [applies t ~net] holds when the certificate covers every update set of
    [net] touching the view's sources — and at least one does, so there is
    actual maintenance work the strategy can claim. *)
val applies : t -> net:Transaction.net -> bool

(** [delta t ~contents ~net] computes the view delta from the update sets
    and the current materialization alone.  Precondition: [applies]; update
    sets of uncovered relations are ignored. *)
val delta : t -> contents:Relation.t -> net:Transaction.net -> Delta.t
