(** View manager: registers views over a database and keeps them
    maintained across transactions.

    Two refresh modes, following the paper's Section 6 discussion:
    - [Immediate]: the view is updated as the last operation of every
      committing transaction (the paper's main setting);
    - [Deferred]: update sets accumulate (composed per relation) and are
      applied on demand — the "snapshot refresh" environment of Adiba and
      Lindsay [AL80] that the conclusion extends the approach to. *)

open Relalg

type mode =
  | Immediate
  | Deferred

type t

(** [create ?domains ?policy ?retry db] makes a manager whose commits
    run view maintenance on a domain pool of the given size (clamped to
    ≥ 1).  Resolution order: explicit [domains], then the [IVM_DOMAINS]
    environment variable, then 1 (fully sequential).  Pools are shared
    process-wide per size, so managers are cheap to create and never own
    worker domains.  Parallel commits are deterministic: every view's
    materialization, report (timings aside) and counters are identical to
    a sequential commit (see {!Maintenance.process}).

    [policy] (default {!Resilience.Policy.Abort}) selects the failure
    semantics of {!commit}; [retry] bounds the quarantine self-heal
    (see {!heal}); [heal_schedule] (default
    {!Resilience.Retry.default_schedule}) sets the self-heal backoff
    ladder — rounds before a view is disabled, and how many commits a
    quarantined view waits between automatic attempts.

    [flight_dir] points the flight recorder at a directory
    ({!Resilience.Flight.set_dir}) — equivalent to the
    [IVM_FLIGHT_DIR] environment variable, which it overrides.

    [durability] arms the write-ahead log: every commit appends one
    record to [dir/wal.bin] (group-committed per the config's fsync
    policy) and checkpoints snapshot the full engine state.  A manager
    opened over a directory holding earlier state must call {!recover}
    before committing.  Views must all be defined before the first
    logged commit. *)
val create :
  ?domains:int ->
  ?policy:Resilience.Policy.t ->
  ?retry:Resilience.Retry.policy ->
  ?heal_schedule:Resilience.Retry.schedule ->
  ?flight_dir:string ->
  ?durability:Durability.Config.t ->
  Database.t ->
  t

val policy : t -> Resilience.Policy.t

(** Sequence number of the last commit attempt (aborted ones included);
    0 before the first. *)
val commit_seq : t -> int

val database : t -> Database.t

(** Configured maintenance parallelism (1 = sequential). *)
val domains : t -> int

(** Registration was refused by the static analyzer: the definition
    carries [Error]-level diagnostics (see {!Analysis.Analyzer}). *)
exception Rejected of Analysis.Diagnostic.t list

(** [define_view mgr ~name ?mode ?options expr] runs the static analyzer
    over the definition and, when it is clean, registers the view and
    materializes it immediately.  [keys] declares candidate keys of base
    relations, feeding both the analyzer's Section 5.2 key-retention check
    and {!View.duplicate_free}.  [force] registers the view even when the
    analyzer reports [Error]-level diagnostics (it never skips the
    analysis itself — warnings and hints remain available via
    {!View.lint}).
    @raise Rejected when the analyzer reports errors and [force] is unset.
    @raise Invalid_argument if the name is taken. *)
val define_view :
  t ->
  name:string ->
  ?mode:mode ->
  ?options:Maintenance.options ->
  ?force:bool ->
  ?keys:Query.Keys.t ->
  Query.Expr.t ->
  View.t

(** The registered view.
    @raise Not_found for unknown names. *)
val view : t -> string -> View.t

val view_names : t -> string list

(** Registered pending update sets of a deferred view (relation name and
    composed delta), empty for immediate views. *)
val pending : t -> string -> (string * Delta.t) list

(** [create_index mgr ~relation ~attrs] builds (and keeps maintained) a
    secondary index on a base relation; differential maintenance probes it
    instead of scanning the relation when joining small update sets
    against it.
    @raise Not_found on unknown relations or attributes. *)
val create_index : t -> relation:string -> attrs:Attr.t list -> unit

(** {2 Fault tolerance} *)

type quarantine = {
  error : string;  (** [Printexc.to_string] of the captured exception *)
  backtrace : string;
  since : int;  (** sequence number of the failing commit *)
  heal_failures : int;  (** exhausted self-heal rounds so far *)
  next_eligible : int;
      (** first commit sequence number at which the automatic
          commit-start heal may try again — the backoff ladder of
          {!Resilience.Retry.schedule}.  Explicit {!heal} and
          {!consistent} calls are not gated. *)
}

type view_health =
  | Healthy
  | Quarantined of quarantine
      (** Maintenance failed under the [Quarantine] policy: the
          materialization was rolled back to its last consistent state
          and is now stale; net effects accumulate until the view
          self-heals on its next access or commit. *)
  | Disabled of quarantine
      (** Self-heal exhausted its rounds; only {!repair} revives the
          view. *)

type view_outcome =
  | Rolled_back  (** maintained successfully, then undone by the abort *)
  | Faulted of { error : string; backtrace : string }
  | Unreached  (** a phase before this view's work failed *)

(** A commit failed under the [Abort] policy (or in a base-apply phase
    under [Quarantine]): the database and every materialization were
    rolled back to the exact pre-commit state.  [outcomes] lists every
    view that was resolved for maintenance. *)
exception
  Commit_failed of {
    phase : string;
        (** [apply-deletes], [maintain], [apply-inserts] or [recompute] *)
    error : string;
    backtrace : string;
    outcomes : (string * view_outcome) list;
  }

(** Per-view health, in definition order. *)
val health : t -> (string * view_health) list

(** @raise Not_found for unknown names. *)
val view_health : t -> string -> view_health

(** [heal mgr name] runs one self-heal round on a quarantined view: a
    retry budget ({!create}'s [retry]) of differential drains of its
    banked deltas, then a retry budget of full recomputes — the paper's
    always-correct fallback.  Returns [true] when the view is healthy
    afterwards.  Healthy views return [true] immediately; disabled
    views return [false] without work.  Runs implicitly at the start of
    every {!commit} and inside {!consistent}. *)
val heal : t -> string -> bool

(** [repair mgr name] force-recomputes a quarantined or disabled view
    outside the instrumented (fault-injectable) maintenance path and
    marks it healthy; returns [false] if the view was already healthy. *)
val repair : t -> string -> bool

(** [commit mgr txn] nets the transaction, updates the base relations,
    maintains the immediate views the transaction touches and
    accumulates deltas for deferred views.  Views the net effect does
    not touch skip maintenance entirely (no report, no stats).

    Failure semantics by policy: under [Abort] any maintenance failure
    rolls everything back and raises {!Commit_failed}; under
    [Quarantine] a failing view is rolled back and quarantined while
    siblings and base updates commit (base-apply failures still abort);
    under [Unprotected] the first exception escapes mid-pipeline and
    may leave the database torn.
    @raise Transaction.Invalid on invalid transactions (nothing
    applied).
    @raise Commit_failed as above. *)
val commit : t -> Transaction.t -> Maintenance.report list

(** [refresh mgr name] brings a deferred view up to date differentially
    from its composed pending deltas.  No-op for immediate views. *)
val refresh : t -> string -> Maintenance.report option

val refresh_all : t -> Maintenance.report list

(** Cumulative per-view maintenance statistics since definition.

    The advisor fields accumulate on every commit that touches the view's
    relations — also when the strategy is forced to [Differential] or
    [Recompute] — so the cost model gathers calibration data regardless of
    policy (see {!Advisor.calibrate} for the fitted scales). *)
type stats = {
  commits : int;  (** transactions that touched the view's relations *)
  rows_evaluated : int;
  screened_out : int;
  screened_kept : int;
  tuples_inserted : int;  (** counted, into the view *)
  tuples_deleted : int;
  recomputations : int;  (** commits resolved to the recompute strategy *)
  self_maintained : int;
      (** commits resolved to the zero-base-read self-maintenance path *)
  maintenance_ns : int;  (** wall time spent maintaining this view *)
  advisor_decisions : int;  (** cost-model predictions recorded *)
  advisor_agreements : int;
      (** predictions matching the strategy actually used *)
  predicted_differential_cost : float;  (** cumulative, model units *)
  predicted_recompute_cost : float;
}

(** Statistics for one view.
    @raise Not_found for unknown names. *)
val stats : t -> string -> stats

val pp_stats : Format.formatter -> stats -> unit

(** Recompute-from-scratch comparison, counters included.  A
    quarantined view gets a self-heal round first; it (or a disabled
    view) reports [false] if still unhealthy afterwards. *)
val consistent : t -> string -> bool

val all_consistent : t -> bool

(** {2 Durability}

    With {!create}'s [durability] armed, the manager maintains a
    write-ahead log and checkpoint in the configured directory (see
    {!Durability} for the on-disk format and [docs/recovery.md] for the
    full protocol).  One [Commit] record lands per commit attempt —
    the netted base deltas, the commit-start heal transitions, and
    per-view outcomes — and standalone records cover explicit
    {!heal}/{!repair}/{!refresh} calls.  Recovery restores the latest
    checkpoint and replays the log tail through the live maintenance
    machinery. *)

(** The configured self-heal backoff ladder. *)
val heal_schedule : t -> Resilience.Retry.schedule

(** [true] when the manager was created with a durability config. *)
val durable : t -> bool

(** LSN of the last record appended to (or recovered from) the WAL;
    0 when not durable or nothing has been logged. *)
val wal_lsn : t -> int

(** Deep serializable image of the engine state (base relations,
    materializations, pending deltas, health, sequence numbers).  The
    checkpoint payload, and the unit the crash-recovery oracle
    compares with {!Durability.State.diff}.  Per-view {!stats} are
    observability, not state, and are not captured. *)
val capture_state : t -> Durability.State.t

(** Snapshot the full state to the checkpoint file (atomically:
    tmp + fsync + rename) and truncate the WAL — the records it held
    are covered by the new checkpoint.
    @raise Invalid_argument when the manager is not durable.
    @raise Failure when recovery is still pending. *)
val checkpoint : t -> unit

(** What {!recover} did. *)
type recovery = {
  checkpoint_seq : int;  (** commit seq the restored checkpoint held *)
  checkpoint_lsn : int;  (** last WAL record the checkpoint covered *)
  records_replayed : int;  (** log-tail records re-run *)
  last_seq : int;  (** manager commit seq after replay *)
  last_lsn : int;  (** WAL LSN after replay *)
  torn_bytes : int;  (** torn-tail bytes truncated at open *)
}

(** [recover mgr] restores the checkpoint (if any), replays the WAL
    tail through the live maintenance machinery — [Faulted] views are
    forced back into quarantine with their recorded error, cascades and
    banking re-emerge organically — and writes a fresh checkpoint, so
    recovering twice (or recovering, crashing and recovering again) is
    idempotent.  Fault injection is disabled for the duration.  Every
    view must be defined (in the original order) before calling, and
    the manager should be configured like the one that wrote the log
    (replay of a [Faulted] outcome forces [Quarantine] semantics for
    that record regardless of the configured policy, so a policy
    mismatch cannot silently drop a committed record's deltas).
    Requires a durable manager that has not yet logged a commit of its
    own.
    @raise Invalid_argument when the manager is not durable or the
    checkpoint names unknown relations or views.
    @raise Durability.Incompatible_wal on a foreign or future-format
    file. *)
val recover : t -> recovery
