(** View manager: registers views over a database and keeps them
    maintained across transactions.

    Two refresh modes, following the paper's Section 6 discussion:
    - [Immediate]: the view is updated as the last operation of every
      committing transaction (the paper's main setting);
    - [Deferred]: update sets accumulate (composed per relation) and are
      applied on demand — the "snapshot refresh" environment of Adiba and
      Lindsay [AL80] that the conclusion extends the approach to. *)

open Relalg

type mode =
  | Immediate
  | Deferred

type t

(** [create ?domains db] makes a manager whose commits run view
    maintenance on a domain pool of the given size (clamped to ≥ 1).
    Resolution order: explicit [domains], then the [IVM_DOMAINS]
    environment variable, then 1 (fully sequential).  Pools are shared
    process-wide per size, so managers are cheap to create and never own
    worker domains.  Parallel commits are deterministic: every view's
    materialization, report (timings aside) and counters are identical to
    a sequential commit (see {!Maintenance.process}). *)
val create : ?domains:int -> Database.t -> t

val database : t -> Database.t

(** Configured maintenance parallelism (1 = sequential). *)
val domains : t -> int

(** Registration was refused by the static analyzer: the definition
    carries [Error]-level diagnostics (see {!Analysis.Analyzer}). *)
exception Rejected of Analysis.Diagnostic.t list

(** [define_view mgr ~name ?mode ?options expr] runs the static analyzer
    over the definition and, when it is clean, registers the view and
    materializes it immediately.  [keys] declares candidate keys of base
    relations, feeding both the analyzer's Section 5.2 key-retention check
    and {!View.duplicate_free}.  [force] registers the view even when the
    analyzer reports [Error]-level diagnostics (it never skips the
    analysis itself — warnings and hints remain available via
    {!View.lint}).
    @raise Rejected when the analyzer reports errors and [force] is unset.
    @raise Invalid_argument if the name is taken. *)
val define_view :
  t ->
  name:string ->
  ?mode:mode ->
  ?options:Maintenance.options ->
  ?force:bool ->
  ?keys:Query.Keys.t ->
  Query.Expr.t ->
  View.t

(** The registered view.
    @raise Not_found for unknown names. *)
val view : t -> string -> View.t

val view_names : t -> string list

(** Registered pending update sets of a deferred view (relation name and
    composed delta), empty for immediate views. *)
val pending : t -> string -> (string * Delta.t) list

(** [create_index mgr ~relation ~attrs] builds (and keeps maintained) a
    secondary index on a base relation; differential maintenance probes it
    instead of scanning the relation when joining small update sets
    against it.
    @raise Not_found on unknown relations or attributes. *)
val create_index : t -> relation:string -> attrs:Attr.t list -> unit

(** [commit mgr txn] nets the transaction, updates the base relations,
    maintains immediate views and accumulates deltas for deferred views.
    @raise Transaction.Invalid on invalid transactions. *)
val commit : t -> Transaction.t -> Maintenance.report list

(** [refresh mgr name] brings a deferred view up to date differentially
    from its composed pending deltas.  No-op for immediate views. *)
val refresh : t -> string -> Maintenance.report option

val refresh_all : t -> Maintenance.report list

(** Cumulative per-view maintenance statistics since definition.

    The advisor fields accumulate on every commit that touches the view's
    relations — also when the strategy is forced to [Differential] or
    [Recompute] — so the cost model gathers calibration data regardless of
    policy (see {!Advisor.calibrate} for the fitted scales). *)
type stats = {
  commits : int;  (** transactions that touched the view's relations *)
  rows_evaluated : int;
  screened_out : int;
  screened_kept : int;
  tuples_inserted : int;  (** counted, into the view *)
  tuples_deleted : int;
  recomputations : int;  (** commits resolved to the recompute strategy *)
  maintenance_ns : int;  (** wall time spent maintaining this view *)
  advisor_decisions : int;  (** cost-model predictions recorded *)
  advisor_agreements : int;
      (** predictions matching the strategy actually used *)
  predicted_differential_cost : float;  (** cumulative, model units *)
  predicted_recompute_cost : float;
}

(** Statistics for one view.
    @raise Not_found for unknown names. *)
val stats : t -> string -> stats

val pp_stats : Format.formatter -> stats -> unit

(** Recompute-from-scratch comparison, counters included. *)
val consistent : t -> string -> bool

val all_consistent : t -> bool
