open Relalg

type t = {
  inserts : Relation.t;
  deletes : Relation.t;
}

let empty schema =
  { inserts = Relation.create schema; deletes = Relation.create schema }

let is_empty d = Relation.is_empty d.inserts && Relation.is_empty d.deletes
let size d = Relation.total d.inserts + Relation.total d.deletes

let of_lists schema (inserts, deletes) =
  {
    inserts = Relation.of_tuples schema inserts;
    deletes = Relation.of_tuples schema deletes;
  }

let copy d =
  { inserts = Relation.copy d.inserts; deletes = Relation.copy d.deletes }

let reschema d s =
  { inserts = Relation.reschema d.inserts s; deletes = Relation.reschema d.deletes s }

let merge_into ~into d =
  Relation.union_into ~into:into.inserts d.inserts;
  Relation.union_into ~into:into.deletes d.deletes

let normalize d =
  let out = empty (Relation.schema d.inserts) in
  Relation.iter
    (fun t c ->
      let cancelled = min c (Relation.count d.deletes t) in
      if c > cancelled then Relation.update out.inserts t (c - cancelled))
    d.inserts;
  Relation.iter
    (fun t c ->
      let cancelled = min c (Relation.count d.inserts t) in
      if c > cancelled then Relation.update out.deletes t (c - cancelled))
    d.deletes;
  out

let between ~before ~after =
  let out = empty (Relation.schema after) in
  Relation.iter
    (fun t c ->
      let old = Relation.count before t in
      if c > old then Relation.update out.inserts t (c - old))
    after;
  Relation.iter
    (fun t c ->
      let now = Relation.count after t in
      if c > now then Relation.update out.deletes t (c - now))
    before;
  out

let apply d r =
  Relation.iter (fun t c -> Relation.update r t c) d.inserts;
  Relation.iter (fun t c -> Relation.update r t (-c)) d.deletes

let compose ~first ~second =
  let schema = Relation.schema first.inserts in
  let out = empty schema in
  (* inserts = (i1 - d2) U (i2 - d1) *)
  Relation.iter
    (fun t _ ->
      if not (Relation.mem second.deletes t) then Relation.add out.inserts t)
    first.inserts;
  Relation.iter
    (fun t _ ->
      if not (Relation.mem first.deletes t) then Relation.add out.inserts t)
    second.inserts;
  (* deletes = (d1 - i2) U (d2 - i1) *)
  Relation.iter
    (fun t _ ->
      if not (Relation.mem second.inserts t) then Relation.add out.deletes t)
    first.deletes;
  Relation.iter
    (fun t _ ->
      if not (Relation.mem first.inserts t) then Relation.add out.deletes t)
    second.deletes;
  out

let pp ppf d =
  Format.fprintf ppf "@[<v>@[<v 2>inserts:@,%a@]@,@[<v 2>deletes:@,%a@]@]"
    Relation.pp d.inserts Relation.pp d.deletes
