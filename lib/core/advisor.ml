open Relalg

type decision = {
  differential_cost : float;
  recompute_cost : float;
  choose_differential : bool;
}

(* Calibrated against experiment E9 on the hash-join engine: differential
   work is dominated by re-hashing the old parts each modified row joins
   with, recomputation by one scan of every source plus materializing the
   view. *)
let differential_weight = 1.0
let recompute_weight = 1.0

let decide view ~db ~net =
  let spj = View.spj view in
  let sources = spj.Query.Spj.sources in
  let p = List.length sources in
  let source_size (s : Query.Spj.source) =
    Relation.cardinal (Database.find db s.Query.Spj.relation)
  in
  let sizes = List.map source_size sources in
  let total_sources = List.fold_left ( + ) 0 sizes in
  let modified_relations =
    List.sort_uniq String.compare (List.map fst net)
  in
  let k =
    List.length
      (List.filter
         (fun (s : Query.Spj.source) ->
           List.mem s.Query.Spj.relation modified_relations)
         sources)
  in
  let delta_total =
    List.fold_left
      (fun acc (_, (inserts, deletes)) ->
        acc + List.length inserts + List.length deletes)
      0 net
  in
  let avg_source =
    if p = 0 then 0.0 else float_of_int total_sources /. float_of_int p
  in
  (* Each truth-table row joins its delta operands against at most (p - 1)
     other operands; hash joins cost about the size of both sides.  Rows
     that draw several delta operands are tiny, so the row count enters
     sub-exponentially: k rows carry one delta, the rest shrink fast. *)
  let rows = float_of_int (max 1 ((2 * ((1 lsl max 0 k) - 1)) / max 1 k)) in
  let differential_cost =
    if k = 0 then 0.0
    else
      (* Every delta tuple is screened, hashed and merged (~3 touches)
         before the per-row join work. *)
      differential_weight
      *. ((3.0 *. float_of_int delta_total)
          +. (rows
              *. (float_of_int delta_total
                 +. (float_of_int (p - 1) *. avg_source /. 4.0))))
  in
  let recompute_cost =
    recompute_weight
    *. (float_of_int total_sources
       +. float_of_int (Relation.cardinal (View.contents view)))
  in
  {
    differential_cost;
    recompute_cost;
    choose_differential = differential_cost <= recompute_cost;
  }

let pp_decision ppf d =
  Format.fprintf ppf "differential=%.0f recompute=%.0f -> %s"
    d.differential_cost d.recompute_cost
    (if d.choose_differential then "differential" else "recompute")

(* ------------------------------------------------------------------ *)
(* calibration: predicted cost units vs measured wall time             *)
(* ------------------------------------------------------------------ *)

type sample = {
  view : string;
  decision : decision;
  used_differential : bool;
  actual_ns : int;
}

let sample_capacity = 10_000
let store_mutex = Mutex.create ()
let store : sample Queue.t = Queue.create ()

let locked f =
  Mutex.lock store_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock store_mutex) f

let record ~view ~used_differential ~actual_ns decision =
  locked (fun () ->
      if Queue.length store >= sample_capacity then ignore (Queue.pop store);
      Queue.push { view; decision; used_differential; actual_ns } store);
  if Obs.Control.enabled () then begin
    let choice d = if d then "differential" else "recompute" in
    Obs.Metrics.add "ivm_advisor_decisions_total"
      ~labels:
        [
          ("view", view);
          ("predicted", choice decision.choose_differential);
          ("used", choice used_differential);
        ]
      1;
    Obs.Metrics.observe "ivm_advisor_actual_ns"
      ~labels:[ ("view", view); ("used", choice used_differential) ]
      actual_ns;
    Obs.Metrics.set_gauge "ivm_advisor_predicted_cost"
      ~labels:[ ("view", view); ("strategy", "differential") ]
      decision.differential_cost;
    Obs.Metrics.set_gauge "ivm_advisor_predicted_cost"
      ~labels:[ ("view", view); ("strategy", "recompute") ]
      decision.recompute_cost
  end

let samples () = locked (fun () -> List.of_seq (Queue.to_seq store))
let reset_samples () = locked (fun () -> Queue.clear store)

type calibration = {
  n_samples : int;
  agreements : int;
  scale_differential : float option;
  scale_recompute : float option;
  mean_abs_rel_error : float option;
}

let calibrate () =
  let samples = samples () in
  let n_samples = List.length samples in
  let agreements =
    List.length
      (List.filter
         (fun s -> s.decision.choose_differential = s.used_differential)
         samples)
  in
  let predicted s =
    if s.used_differential then s.decision.differential_cost
    else s.decision.recompute_cost
  in
  let scale_for strategy_differential =
    let relevant =
      List.filter
        (fun s -> s.used_differential = strategy_differential && predicted s > 0.0)
        samples
    in
    let sum_pred = List.fold_left (fun acc s -> acc +. predicted s) 0.0 relevant in
    let sum_actual =
      List.fold_left (fun acc s -> acc +. float_of_int s.actual_ns) 0.0 relevant
    in
    if sum_pred > 0.0 then Some (sum_actual /. sum_pred) else None
  in
  let scale_differential = scale_for true in
  let scale_recompute = scale_for false in
  let errors =
    List.filter_map
      (fun s ->
        let scale =
          if s.used_differential then scale_differential else scale_recompute
        in
        match scale with
        | Some scale when predicted s > 0.0 && s.actual_ns > 0 ->
          Some
            (Float.abs ((predicted s *. scale) -. float_of_int s.actual_ns)
            /. float_of_int s.actual_ns)
        | _ -> None)
      samples
  in
  let mean_abs_rel_error =
    match errors with
    | [] -> None
    | _ ->
      Some
        (List.fold_left ( +. ) 0.0 errors /. float_of_int (List.length errors))
  in
  { n_samples; agreements; scale_differential; scale_recompute;
    mean_abs_rel_error }

let sample_json s =
  Obs.Json.Obj
    [
      ("view", Obs.Json.Str s.view);
      ("predicted_differential", Obs.Json.Float s.decision.differential_cost);
      ("predicted_recompute", Obs.Json.Float s.decision.recompute_cost);
      ("chose_differential", Obs.Json.Bool s.decision.choose_differential);
      ( "used",
        Obs.Json.Str
          (if s.used_differential then "differential" else "recompute") );
      ("actual_ns", Obs.Json.Int s.actual_ns);
    ]

let samples_json ?limit () =
  let all = samples () in
  let all =
    match limit with
    | None -> all
    | Some k ->
      let n = List.length all in
      if n <= k then all else List.filteri (fun i _ -> i >= n - k) all
  in
  Obs.Json.List (List.map sample_json all)

let calibration_json () =
  let c = calibrate () in
  let opt = function
    | None -> Obs.Json.Null
    | Some x -> Obs.Json.Float x
  in
  Obs.Json.Obj
    [
      ("samples", Obs.Json.Int c.n_samples);
      ("agreements", Obs.Json.Int c.agreements);
      ("scale_differential_ns_per_unit", opt c.scale_differential);
      ("scale_recompute_ns_per_unit", opt c.scale_recompute);
      ("mean_abs_rel_error", opt c.mean_abs_rel_error);
    ]

let pp_calibration ppf c =
  let opt ppf = function
    | None -> Format.pp_print_string ppf "n/a"
    | Some x -> Format.fprintf ppf "%.3g" x
  in
  Format.fprintf ppf
    "%d samples, %d/%d agree; scale diff=%a rec=%a ns/unit; mean |rel err| %a"
    c.n_samples c.agreements c.n_samples opt c.scale_differential opt
    c.scale_recompute opt c.mean_abs_rel_error
