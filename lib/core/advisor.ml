open Relalg

type arm =
  | Differential
  | Recompute
  | Self_maintain

let arm_name = function
  | Differential -> "differential"
  | Recompute -> "recompute"
  | Self_maintain -> "self_maintain"

type decision = {
  differential_cost : float;
  recompute_cost : float;
  self_maintain_cost : float option;
  choose : arm;
  choose_differential : bool;
}

(* Calibrated against experiment E9 on the hash-join engine: differential
   work is dominated by re-hashing the old parts each modified row joins
   with, recomputation by one scan of every source plus materializing the
   view.  Self-maintenance touches each update tuple twice (condition or
   key probe, then the drain/apply) and nothing else. *)
let differential_weight = 1.0
let recompute_weight = 1.0
let self_maintain_weight = 1.0

let decide view ~db ~net =
  let spj = View.spj view in
  let sources = spj.Query.Spj.sources in
  let p = List.length sources in
  let source_size (s : Query.Spj.source) =
    Relation.cardinal (Database.find db s.Query.Spj.relation)
  in
  let sizes = List.map source_size sources in
  let total_sources = List.fold_left ( + ) 0 sizes in
  let modified_relations =
    List.sort_uniq String.compare (List.map fst net)
  in
  let k =
    List.length
      (List.filter
         (fun (s : Query.Spj.source) ->
           List.mem s.Query.Spj.relation modified_relations)
         sources)
  in
  let delta_total =
    List.fold_left
      (fun acc (_, (inserts, deletes)) ->
        acc + List.length inserts + List.length deletes)
      0 net
  in
  let avg_source =
    if p = 0 then 0.0 else float_of_int total_sources /. float_of_int p
  in
  (* Each truth-table row joins its delta operands against at most (p - 1)
     other operands; hash joins cost about the size of both sides.  Rows
     that draw several delta operands are tiny, so the row count enters
     sub-exponentially: k rows carry one delta, the rest shrink fast. *)
  let rows = float_of_int (max 1 ((2 * ((1 lsl max 0 k) - 1)) / max 1 k)) in
  let differential_cost =
    if k = 0 then 0.0
    else
      (* Every delta tuple is screened, hashed and merged (~3 touches)
         before the per-row join work. *)
      differential_weight
      *. ((3.0 *. float_of_int delta_total)
          +. (rows
              *. (float_of_int delta_total
                 +. (float_of_int (p - 1) *. avg_source /. 4.0))))
  in
  let recompute_cost =
    recompute_weight
    *. (float_of_int total_sources
       +. float_of_int (Relation.cardinal (View.contents view)))
  in
  let self_maintain_cost =
    match View.self_maintain view with
    | Some plan when Self_maintain.applies plan ~net ->
      Some (self_maintain_weight *. ((2.0 *. float_of_int delta_total) +. 1.0))
    | _ -> None
  in
  let cheaper_classic =
    if differential_cost <= recompute_cost then Differential else Recompute
  in
  let choose =
    match self_maintain_cost with
    | Some c
      when c <= differential_cost && c <= recompute_cost ->
      Self_maintain
    | _ -> cheaper_classic
  in
  {
    differential_cost;
    recompute_cost;
    self_maintain_cost;
    choose;
    choose_differential = choose = Differential;
  }

let pp_decision ppf d =
  Format.fprintf ppf "differential=%.0f recompute=%.0f%s -> %s"
    d.differential_cost d.recompute_cost
    (match d.self_maintain_cost with
    | None -> ""
    | Some c -> Printf.sprintf " self_maintain=%.0f" c)
    (arm_name d.choose)

(* ------------------------------------------------------------------ *)
(* calibration: predicted cost units vs measured wall time             *)
(* ------------------------------------------------------------------ *)

type sample = {
  view : string;
  decision : decision;
  used : arm;
  actual_ns : int;
}

let sample_capacity = 10_000
let store_mutex = Mutex.create ()
let store : sample Queue.t = Queue.create ()

let locked f =
  Mutex.lock store_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock store_mutex) f

let record ~view ~used ~actual_ns decision =
  locked (fun () ->
      if Queue.length store >= sample_capacity then ignore (Queue.pop store);
      Queue.push { view; decision; used; actual_ns } store);
  if Obs.Control.enabled () then begin
    Obs.Metrics.add "ivm_advisor_decisions_total"
      ~labels:
        [
          ("view", view);
          ("predicted", arm_name decision.choose);
          ("used", arm_name used);
        ]
      1;
    Obs.Metrics.observe "ivm_advisor_actual_ns"
      ~labels:[ ("view", view); ("used", arm_name used) ]
      actual_ns;
    Obs.Metrics.set_gauge "ivm_advisor_predicted_cost"
      ~labels:[ ("view", view); ("strategy", "differential") ]
      decision.differential_cost;
    Obs.Metrics.set_gauge "ivm_advisor_predicted_cost"
      ~labels:[ ("view", view); ("strategy", "recompute") ]
      decision.recompute_cost;
    match decision.self_maintain_cost with
    | Some c ->
      Obs.Metrics.set_gauge "ivm_advisor_predicted_cost"
        ~labels:[ ("view", view); ("strategy", "self_maintain") ]
        c
    | None -> ()
  end

let samples () = locked (fun () -> List.of_seq (Queue.to_seq store))
let reset_samples () = locked (fun () -> Queue.clear store)

type calibration = {
  n_samples : int;
  agreements : int;
  scale_differential : float option;
  scale_recompute : float option;
  scale_self_maintain : float option;
  mean_abs_rel_error : float option;
}

(* The model cost of the arm a sample actually ran; [None] when the arm
   carried no prediction (a forced Self_maintain without a certificate
   cannot happen, but a fallback-to-differential sample is an ordinary
   differential prediction). *)
let predicted s =
  match s.used with
  | Differential -> Some s.decision.differential_cost
  | Recompute -> Some s.decision.recompute_cost
  | Self_maintain -> s.decision.self_maintain_cost

let calibrate () =
  let samples = samples () in
  let n_samples = List.length samples in
  let agreements =
    List.length (List.filter (fun s -> s.decision.choose = s.used) samples)
  in
  let scale_for arm =
    let relevant =
      List.filter
        (fun s ->
          s.used = arm
          && match predicted s with Some p -> p > 0.0 | None -> false)
        samples
    in
    let sum_pred =
      List.fold_left
        (fun acc s -> acc +. Option.value ~default:0.0 (predicted s))
        0.0 relevant
    in
    let sum_actual =
      List.fold_left (fun acc s -> acc +. float_of_int s.actual_ns) 0.0 relevant
    in
    if sum_pred > 0.0 then Some (sum_actual /. sum_pred) else None
  in
  let scale_differential = scale_for Differential in
  let scale_recompute = scale_for Recompute in
  let scale_self_maintain = scale_for Self_maintain in
  let scale_of = function
    | Differential -> scale_differential
    | Recompute -> scale_recompute
    | Self_maintain -> scale_self_maintain
  in
  let errors =
    List.filter_map
      (fun s ->
        match (scale_of s.used, predicted s) with
        | Some scale, Some p when p > 0.0 && s.actual_ns > 0 ->
          Some
            (Float.abs ((p *. scale) -. float_of_int s.actual_ns)
            /. float_of_int s.actual_ns)
        | _ -> None)
      samples
  in
  let mean_abs_rel_error =
    match errors with
    | [] -> None
    | _ ->
      Some
        (List.fold_left ( +. ) 0.0 errors /. float_of_int (List.length errors))
  in
  { n_samples; agreements; scale_differential; scale_recompute;
    scale_self_maintain; mean_abs_rel_error }

let sample_json s =
  Obs.Json.Obj
    [
      ("view", Obs.Json.Str s.view);
      ("predicted_differential", Obs.Json.Float s.decision.differential_cost);
      ("predicted_recompute", Obs.Json.Float s.decision.recompute_cost);
      ( "predicted_self_maintain",
        match s.decision.self_maintain_cost with
        | Some c -> Obs.Json.Float c
        | None -> Obs.Json.Null );
      ("chose", Obs.Json.Str (arm_name s.decision.choose));
      ("chose_differential", Obs.Json.Bool s.decision.choose_differential);
      ("used", Obs.Json.Str (arm_name s.used));
      ("actual_ns", Obs.Json.Int s.actual_ns);
    ]

let samples_json ?limit () =
  let all = samples () in
  let all =
    match limit with
    | None -> all
    | Some k ->
      let n = List.length all in
      if n <= k then all else List.filteri (fun i _ -> i >= n - k) all
  in
  Obs.Json.List (List.map sample_json all)

(* Algorithm R over the in-memory sample queue with a private LCG
   (Numerical Recipes constants): the snapshot keeps a fixed-size,
   deterministic cross-section of the whole run instead of just its
   tail, so two runs of the same workload diff cleanly. *)
let reservoir_samples ?(k = 64) ?(seed = 1986) () =
  let state = ref (Int64.of_int seed) in
  let rand bound =
    state :=
      Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.unsigned_rem !state (Int64.of_int bound))
  in
  let reservoir = Array.make (max 1 k) None in
  List.iteri
    (fun i s ->
      if i < k then reservoir.(i) <- Some s
      else
        let j = rand (i + 1) in
        if j < k then reservoir.(j) <- Some s)
    (samples ());
  Array.to_list reservoir |> List.filter_map Fun.id

let reservoir_json ?k ?seed () =
  Obs.Json.List (List.map sample_json (reservoir_samples ?k ?seed ()))

let calibration_json () =
  let c = calibrate () in
  let opt = function
    | None -> Obs.Json.Null
    | Some x -> Obs.Json.Float x
  in
  Obs.Json.Obj
    [
      ("samples", Obs.Json.Int c.n_samples);
      ("agreements", Obs.Json.Int c.agreements);
      ("scale_differential_ns_per_unit", opt c.scale_differential);
      ("scale_recompute_ns_per_unit", opt c.scale_recompute);
      ("scale_self_maintain_ns_per_unit", opt c.scale_self_maintain);
      ("mean_abs_rel_error", opt c.mean_abs_rel_error);
    ]

let pp_calibration ppf c =
  let opt ppf = function
    | None -> Format.pp_print_string ppf "n/a"
    | Some x -> Format.fprintf ppf "%.3g" x
  in
  Format.fprintf ppf
    "%d samples, %d/%d agree; scale diff=%a rec=%a sm=%a ns/unit; mean |rel \
     err| %a"
    c.n_samples c.agreements c.n_samples opt c.scale_differential opt
    c.scale_recompute opt c.scale_self_maintain opt c.mean_abs_rel_error
