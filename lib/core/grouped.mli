(** Runtime state of a GROUP BY view.

    A grouped view is maintained in two stages: the inner SPJ expression
    is materialized and maintained by the ordinary counted machinery,
    and this module folds the inner delta into per-(group, target)
    accumulators, emitting the delta of the rendered grouped contents.
    The delta of a group is the ring-add of its members' deltas
    ([Relalg.Ring]); the non-invertible MIN/MAX monoids fall back to a
    per-group rescan of the inner materialization, but only when a
    deletion drains the current extremum's support to zero. *)

open Relalg

type t

(** [create spec ~inner] builds group state by scanning [inner].  The
    relation is held by reference: {!step} applies inner deltas to it.
    @raise Invalid_argument when a key or aggregate source is missing
    from [inner]'s schema. *)
val create : Query.Aggregate.t -> inner:Relation.t -> t

val spec : t -> Query.Aggregate.t

(** The inner SPJ materialization (live, not a copy). *)
val inner : t -> Relation.t

(** Schema of the rendered grouped contents. *)
val schema : t -> Schema.t

(** Drop and rebuild all group state from the inner materialization.
    Used after a rollback restored the inner relation, and by
    recompute. *)
val rebuild : t -> unit

(** Render the full grouped contents (one multiplicity-1 tuple per
    non-empty group) as a fresh relation. *)
val render : t -> Relation.t

(** [step t delta] applies the inner delta to the inner materialization
    (through [on_inner] when given, so the caller can journal each
    counter update), folds it into the group accumulators, rescans the
    groups whose MIN/MAX support drained, and returns
    [(outer_delta, groups_touched, rescans)] — the delta to apply to the
    rendered contents plus provenance counts.
    @raise Invalid_argument when the delta would make a group's member
    count negative. *)
val step :
  ?on_inner:(Tuple.t -> int -> unit) -> t -> Delta.t -> Delta.t * int * int
