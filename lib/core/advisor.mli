(** Adaptive choice among differential, complete re-evaluation, and
    certified self-maintenance.

    The paper's conclusion leaves open "under what circumstances
    differential re-evaluation is more efficient than complete
    re-evaluation".  Experiment E9 locates the crossover empirically; this
    module turns it into a runtime policy: a cheap cost model compares the
    expected work of the strategies per transaction, so churn-heavy
    transactions fall back to recomputation automatically and certified
    transactions take the zero-base-read path.

    The model is deliberately simple (costs are linear in the sizes a
    hash-join engine touches):

    - differential: every truth-table row evaluation scans the update sets
      and probes the old parts it joins with; bounded by
      [rows * (delta_total + sum of old parts actually joined)], which we
      approximate with [2^k * (delta_total + (p-1) * avg_source)] damped by
      the observation that most rows short-circuit on empty operands;
    - recompute: scans every source and rebuilds the view:
      [sum sources + |view|];
    - self-maintain (only when the view's {!Self_maintain} certificate
      covers the transaction): each update tuple is touched twice — the
      substituted condition or the key probe, then the drain/apply —
      [2 * delta_total + 1].

    The constants were calibrated against E9/E21 on this engine; see
    EXPERIMENTS.md.  The decision is exposed so callers can log it. *)

(** A maintenance arm the advisor can pick.  Mirrors the concrete
    {!Maintenance.strategy} values (that type also carries [Adaptive],
    which is what invokes this module, so it cannot be reused here). *)
type arm =
  | Differential
  | Recompute
  | Self_maintain

val arm_name : arm -> string

type decision = {
  differential_cost : float;  (** model estimate, abstract units *)
  recompute_cost : float;
  self_maintain_cost : float option;
      (** [None] when the view has no certificate or it does not cover
          this transaction's update sets *)
  choose : arm;  (** cheapest applicable arm *)
  choose_differential : bool;
      (** [choose = Differential]; kept for the pre-[Self_maintain]
          consumers of the two-arm model *)
}

(** [decide view ~db ~net] evaluates the cost model for one transaction.
    [db] may be in pre- or deletions-applied state (only cardinalities are
    read). *)
val decide : View.t -> db:Relalg.Database.t -> net:Relalg.Transaction.net -> decision

val pp_decision : Format.formatter -> decision -> unit

(** {2 Calibration}

    The model predicts abstract cost units; the pipeline measures wall
    time.  Recording every (prediction, measured ns) pair — on {e every}
    commit, not only when the strategy is [Adaptive] — accumulates the
    data needed to validate and recalibrate the model: a least-squares
    scale (ns per cost unit) per strategy, and the mean relative error of
    the scaled prediction.  The store is a bounded in-memory ring
    ({!sample_capacity} newest samples); {!record} also feeds the
    [ivm_advisor_*] metrics in {!Obs.Metrics} when telemetry is on. *)

type sample = {
  view : string;
  decision : decision;
  used : arm;  (** strategy actually executed *)
  actual_ns : int;  (** measured wall time of the maintenance *)
}

val sample_capacity : int

(** [record ~view ~used ~actual_ns decision] appends one calibration
    sample (oldest dropped past capacity). *)
val record : view:string -> used:arm -> actual_ns:int -> decision -> unit

(** Newest-last; at most {!sample_capacity}. *)
val samples : unit -> sample list

val reset_samples : unit -> unit

type calibration = {
  n_samples : int;
  agreements : int;
      (** samples where the model's choice matches the strategy used *)
  scale_differential : float option;
      (** ns per differential cost unit: [sum actual / sum predicted] over
          samples that ran differentially; [None] without such samples *)
  scale_recompute : float option;
  scale_self_maintain : float option;
  mean_abs_rel_error : float option;
      (** mean of [|scaled prediction - actual| / actual] over all samples
          whose strategy has a scale *)
}

val calibrate : unit -> calibration
val pp_calibration : Format.formatter -> calibration -> unit

(** {2 JSON export} — used by [ivm_cli stats --json] and the bench
    snapshot ([BENCH_IVM.json]). *)

(** The newest [limit] samples (all, by default) as a JSON array of
    [{view, predicted_differential, predicted_recompute,
    predicted_self_maintain, chose, chose_differential, used, actual_ns}]
    objects. *)
val samples_json : ?limit:int -> unit -> Obs.Json.t

(** A fixed-size ([k], default 64) uniform cross-section of the recorded
    samples via reservoir sampling (Algorithm R) with a private
    deterministic generator ([seed], default 1986): the same workload
    always exports the same pairs, and the snapshot stays bounded no
    matter how long the run. *)
val reservoir_json : ?k:int -> ?seed:int -> unit -> Obs.Json.t

val calibration_json : unit -> Obs.Json.t
