open Relalg

type mode =
  | Immediate
  | Deferred

type stats = {
  commits : int;
  rows_evaluated : int;
  screened_out : int;
  screened_kept : int;
  tuples_inserted : int;
  tuples_deleted : int;
  recomputations : int;
  maintenance_ns : int;
  advisor_decisions : int;
  advisor_agreements : int;
  predicted_differential_cost : float;
  predicted_recompute_cost : float;
}

let empty_stats =
  {
    commits = 0;
    rows_evaluated = 0;
    screened_out = 0;
    screened_kept = 0;
    tuples_inserted = 0;
    tuples_deleted = 0;
    recomputations = 0;
    maintenance_ns = 0;
    advisor_decisions = 0;
    advisor_agreements = 0;
    predicted_differential_cost = 0.0;
    predicted_recompute_cost = 0.0;
  }

let add_report stats (r : Maintenance.report) =
  let used_differential =
    match r.Maintenance.strategy_used with
    | Maintenance.Recompute -> false
    | Maintenance.Differential | Maintenance.Adaptive -> true
  in
  {
    commits = stats.commits + 1;
    rows_evaluated = stats.rows_evaluated + r.Maintenance.rows_evaluated;
    screened_out = stats.screened_out + r.Maintenance.screened_out;
    screened_kept = stats.screened_kept + r.Maintenance.screened_kept;
    tuples_inserted = stats.tuples_inserted + r.Maintenance.delta_inserts;
    tuples_deleted = stats.tuples_deleted + r.Maintenance.delta_deletes;
    recomputations = (stats.recomputations + if used_differential then 0 else 1);
    maintenance_ns = stats.maintenance_ns + r.Maintenance.total_ns;
    advisor_decisions =
      (stats.advisor_decisions
      + match r.Maintenance.advisor with Some _ -> 1 | None -> 0);
    advisor_agreements =
      (stats.advisor_agreements
      +
      match r.Maintenance.advisor with
      | Some d when d.Advisor.choose_differential = used_differential -> 1
      | Some _ | None -> 0);
    predicted_differential_cost =
      (stats.predicted_differential_cost
      +.
      match r.Maintenance.advisor with
      | Some d -> d.Advisor.differential_cost
      | None -> 0.0);
    predicted_recompute_cost =
      (stats.predicted_recompute_cost
      +.
      match r.Maintenance.advisor with
      | Some d -> d.Advisor.recompute_cost
      | None -> 0.0);
  }

type entry = {
  view : View.t;
  mode : mode;
  options : Maintenance.options;
  mutable pending : (string * Delta.t) list; (* relation -> composed delta *)
  mutable stats : stats;
}

type t = {
  db : Database.t;
  domains : int;
  pool : Exec.Pool.t;
  mutable entries : entry list; (* in definition order *)
}

(* Explicit argument beats the IVM_DOMAINS environment override beats the
   sequential default.  Pools come from the process-wide shared registry:
   managers are cheap and numerous (tests create hundreds), so they must
   not own worker domains. *)
let create ?domains db =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Option.value ~default:1 (Exec.Pool.env_domains ())
  in
  { db; domains; pool = Exec.Pool.shared ~domains; entries = [] }

let database mgr = mgr.db
let domains mgr = mgr.domains

let entry_opt mgr name =
  List.find_opt (fun e -> String.equal (View.name e.view) name) mgr.entries

exception Rejected of Analysis.Diagnostic.t list

let define_view mgr ~name ?(mode = Immediate)
    ?(options = Maintenance.default_options) ?(force = false) ?(keys = []) expr
    =
  if Option.is_some (entry_opt mgr name) then
    invalid_arg (Printf.sprintf "Manager.define_view: %S already exists" name);
  (* Lint before materializing: a rejected definition should not pay for a
     full evaluation.  The analyzer sees the same tableau-minimized form
     that View.define maintains. *)
  let lookup relation = Relation.schema (Database.find mgr.db relation) in
  let diagnostics = Analysis.Analyzer.run_expr ~keys ~lookup expr in
  if (not force) && Analysis.Diagnostic.has_errors diagnostics then
    raise (Rejected diagnostics);
  let view = View.define ~keys ~name ~db:mgr.db expr in
  mgr.entries
  <- mgr.entries @ [ { view; mode; options; pending = []; stats = empty_stats } ];
  view

let entry mgr name =
  match entry_opt mgr name with
  | Some e -> e
  | None -> raise Not_found

let create_index mgr ~relation ~attrs =
  ignore (Index.build (Database.find mgr.db relation) attrs)

let view mgr name = (entry mgr name).view
let stats mgr name = (entry mgr name).stats

let pp_stats ppf s =
  Format.fprintf ppf
    "%d commits (%d recomputed), %d rows evaluated, screened %d/%d, +%d -%d \
     view tuples, %s maintenance"
    s.commits s.recomputations s.rows_evaluated s.screened_out
    (s.screened_out + s.screened_kept)
    s.tuples_inserted s.tuples_deleted
    (Obs.Summary.fmt_ns s.maintenance_ns);
  if s.advisor_decisions > 0 then
    Format.fprintf ppf
      "; advisor: %d/%d agree, predicted diff=%.0f rec=%.0f units"
      s.advisor_agreements s.advisor_decisions s.predicted_differential_cost
      s.predicted_recompute_cost

let view_names mgr = List.map (fun e -> View.name e.view) mgr.entries
let pending mgr name = (entry mgr name).pending

(* Does this transaction's net effect touch any source of the view?  The
   advisor's prediction is only a calibration sample when there is actual
   maintenance work to measure. *)
let net_touches view net =
  List.exists
    (fun (s : Query.Spj.source) ->
      match List.assoc_opt s.Query.Spj.relation net with
      | Some (inserts, deletes) -> inserts <> [] || deletes <> []
      | None -> false)
    (View.spj view).Query.Spj.sources

(* Accumulate a transaction's net effect into a deferred view's pending
   deltas, composing with what is already queued. *)
let accumulate mgr e net =
  let relations_of_view =
    List.sort_uniq String.compare
      (List.map
         (fun (s : Query.Spj.source) -> s.Query.Spj.relation)
         (View.spj e.view).Query.Spj.sources)
  in
  List.iter
    (fun (relation, (inserts, deletes)) ->
      if List.mem relation relations_of_view then begin
        let schema = Relation.schema (Database.find mgr.db relation) in
        let incoming = Delta.of_lists schema (inserts, deletes) in
        let composed =
          match List.assoc_opt relation e.pending with
          | None -> incoming
          | Some existing -> Delta.compose ~first:existing ~second:incoming
        in
        e.pending <-
          (relation, composed) :: List.remove_assoc relation e.pending
      end)
    net

let commit mgr txn =
  Obs.Span.with_span "commit"
    ~args:(fun () ->
      [
        ("views", Obs.Json.Int (List.length mgr.entries));
        ("domains", Obs.Json.Int mgr.domains);
      ])
    (fun () ->
      let net =
        Obs.Span.with_span "net"
          ~args:(fun () -> [ ("ops", Obs.Json.Int (List.length txn)) ])
          (fun () -> Transaction.net_effect mgr.db txn)
      in
      (* Resolve strategies against the pre-state, before any part of the
         net effect is installed.  The advisor runs for every immediate
         view the transaction touches — also under forced strategies — so
         the cost model accumulates calibration data on every commit. *)
      let resolved =
        List.map
          (fun e ->
            match e.mode with
            | Deferred ->
              (e, Maintenance.Differential, None) (* decided at refresh *)
            | Immediate ->
              if net_touches e.view net then begin
                let strategy, decision =
                  Maintenance.resolve_with_decision e.options e.view ~db:mgr.db
                    ~net
                in
                (e, strategy, Some decision)
              end
              else
                ( e,
                  Maintenance.resolve_strategy e.options e.view ~db:mgr.db ~net,
                  None ))
          mgr.entries
      in
      Maintenance.apply_deletes mgr.db net;
      (* Fan the differential views out over the pool: once deletions are
         installed each task only reads base relations and writes its own
         view's materialization, so views are data-independent.  Stats
         mutation stays on the committing domain, applied in definition
         order after the barrier, which keeps commit fully deterministic. *)
      let differential_entries =
        List.filter_map
          (fun (e, strategy, decision) ->
            match e.mode, strategy with
            | Immediate, (Maintenance.Differential | Maintenance.Adaptive) ->
              Some (e, decision)
            | Immediate, Maintenance.Recompute | Deferred, _ -> None)
          resolved
      in
      let reports =
        Exec.Pool.map_list mgr.pool
          (fun (e, decision) ->
            Maintenance.maintain_differential ~options:e.options
              ~pool:mgr.pool ~decision e.view ~db:mgr.db ~net)
          differential_entries
      in
      List.iter2
        (fun (e, _) report -> e.stats <- add_report e.stats report)
        differential_entries reports;
      Maintenance.apply_inserts mgr.db net;
      let recompute_entries =
        List.filter_map
          (fun (e, strategy, decision) ->
            match e.mode, strategy with
            | Immediate, Maintenance.Recompute -> Some (e, decision)
            | Immediate, (Maintenance.Differential | Maintenance.Adaptive)
            | Deferred, _ ->
              None)
          resolved
      in
      let recompute_reports =
        Exec.Pool.map_list mgr.pool
          (fun (e, decision) ->
            Maintenance.maintain_recompute ~decision e.view ~db:mgr.db)
          recompute_entries
      in
      List.iter2
        (fun (e, _) report -> e.stats <- add_report e.stats report)
        recompute_entries recompute_reports;
      List.iter
        (fun (e, _, _) ->
          match e.mode with
          | Deferred -> accumulate mgr e net
          | Immediate -> ())
        resolved;
      reports @ recompute_reports)

(* Snapshot refresh: the current base state S is S0 U i_N - d_N relative to
   the view's last refresh point S0; the old parts the truth table needs
   are r° = S0 - d_N = S - i_N, so we temporarily remove the composed
   insertions, evaluate, and put them back. *)
let refresh mgr name =
  let e = entry mgr name in
  match e.mode with
  | Immediate -> None
  | Deferred ->
    if e.pending = [] then
      Some
        (Maintenance.empty_report ~view_name:name
           ~strategy_used:Maintenance.Differential)
    else
      Obs.Span.with_span "refresh"
        ~args:(fun () -> [ ("view", Obs.Json.Str name) ])
        (fun () ->
          let net =
            Transaction.of_sets
              (List.map
                 (fun (relation, (d : Delta.t)) ->
                   ( relation,
                     ( List.map fst (Relation.elements d.Delta.inserts),
                       List.map fst (Relation.elements d.Delta.deletes) ) ))
                 e.pending)
          in
          (* The deferred drain always runs differentially, but the
             decision is still recorded for calibration. *)
          let decision = Advisor.decide e.view ~db:mgr.db ~net in
          List.iter
            (fun (relation, (inserts, _)) ->
              let r = Database.find mgr.db relation in
              List.iter (fun t -> Relation.remove r t) inserts)
            net;
          let result =
            match
              Maintenance.maintain_differential ~options:e.options
                ~pool:mgr.pool ~decision:(Some decision) e.view ~db:mgr.db ~net
            with
            | report -> Ok report
            | exception exn -> Error exn
          in
          (* Restore the insertions even if evaluation failed. *)
          List.iter
            (fun (relation, (inserts, _)) ->
              let r = Database.find mgr.db relation in
              List.iter (fun t -> Relation.add r t) inserts)
            net;
          match result with
          | Error exn -> raise exn
          | Ok report ->
            e.pending <- [];
            e.stats <- add_report e.stats report;
            Some report)

let refresh_all mgr =
  List.filter_map (fun e -> refresh mgr (View.name e.view)) mgr.entries

let consistent mgr name =
  let e = entry mgr name in
  match e.mode with
  | Immediate -> View.consistent e.view mgr.db
  | Deferred ->
    (* A deferred view is consistent with the state its pending deltas
       rewind to; refreshing first makes it comparable. *)
    ignore (refresh mgr name);
    View.consistent e.view mgr.db

let all_consistent mgr =
  List.for_all (fun e -> consistent mgr (View.name e.view)) mgr.entries
