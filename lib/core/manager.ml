open Relalg

type mode =
  | Immediate
  | Deferred

type stats = {
  commits : int;
  rows_evaluated : int;
  screened_out : int;
  screened_kept : int;
  tuples_inserted : int;
  tuples_deleted : int;
  recomputations : int;
  self_maintained : int;
  maintenance_ns : int;
  advisor_decisions : int;
  advisor_agreements : int;
  predicted_differential_cost : float;
  predicted_recompute_cost : float;
}

let empty_stats =
  {
    commits = 0;
    rows_evaluated = 0;
    screened_out = 0;
    screened_kept = 0;
    tuples_inserted = 0;
    tuples_deleted = 0;
    recomputations = 0;
    self_maintained = 0;
    maintenance_ns = 0;
    advisor_decisions = 0;
    advisor_agreements = 0;
    predicted_differential_cost = 0.0;
    predicted_recompute_cost = 0.0;
  }

let add_report stats (r : Maintenance.report) =
  let used = Maintenance.arm_of_strategy r.Maintenance.strategy_used in
  {
    commits = stats.commits + 1;
    rows_evaluated = stats.rows_evaluated + r.Maintenance.rows_evaluated;
    screened_out = stats.screened_out + r.Maintenance.screened_out;
    screened_kept = stats.screened_kept + r.Maintenance.screened_kept;
    tuples_inserted = stats.tuples_inserted + r.Maintenance.delta_inserts;
    tuples_deleted = stats.tuples_deleted + r.Maintenance.delta_deletes;
    recomputations =
      (stats.recomputations + if used = Advisor.Recompute then 1 else 0);
    self_maintained =
      (stats.self_maintained + if used = Advisor.Self_maintain then 1 else 0);
    maintenance_ns = stats.maintenance_ns + r.Maintenance.total_ns;
    advisor_decisions =
      (stats.advisor_decisions
      + match r.Maintenance.advisor with Some _ -> 1 | None -> 0);
    advisor_agreements =
      (stats.advisor_agreements
      +
      match r.Maintenance.advisor with
      | Some d when d.Advisor.choose = used -> 1
      | Some _ | None -> 0);
    predicted_differential_cost =
      (stats.predicted_differential_cost
      +.
      match r.Maintenance.advisor with
      | Some d -> d.Advisor.differential_cost
      | None -> 0.0);
    predicted_recompute_cost =
      (stats.predicted_recompute_cost
      +.
      match r.Maintenance.advisor with
      | Some d -> d.Advisor.recompute_cost
      | None -> 0.0);
  }

type quarantine = {
  error : string;
  backtrace : string;
  since : int; (* commit sequence number of the failure *)
  heal_failures : int;
  next_eligible : int;
      (* first commit sequence number at which the self-heal ladder may
         try again (see Resilience.Retry.schedule) *)
}

type view_health =
  | Healthy
  | Quarantined of quarantine
  | Disabled of quarantine

type view_outcome =
  | Rolled_back
  | Faulted of { error : string; backtrace : string }
  | Unreached

exception
  Commit_failed of {
    phase : string;
    error : string;
    backtrace : string;
    outcomes : (string * view_outcome) list;
  }

let () =
  Printexc.register_printer (function
    | Commit_failed { phase; error; outcomes; _ } ->
      Some
        (Printf.sprintf "Manager.Commit_failed(phase %s, %d views: %s)" phase
           (List.length outcomes) error)
    | _ -> None)

type entry = {
  view : View.t;
  mode : mode;
  options : Maintenance.options;
  parents : string list;
      (* names of earlier-defined views this one reads; [] for a view
         over base relations only *)
  mutable pending : (string * Delta.t) list; (* relation -> composed delta *)
  mutable stats : stats;
  mutable health : view_health;
}

(* Durable (write-ahead logged) manager state.  [tail] holds the
   records found on disk when the log was opened — [recover] replays
   them; a manager over a non-empty log must recover before it may
   commit. *)
type durable = {
  config : Durability.Config.t;
  wal : Durability.Wal.t;
  mutable tail : (int * Durability.Record.t) list;
  mutable needs_recovery : bool;
  mutable appended : bool; (* this manager instance appended a record *)
  mutable baselined : bool; (* a checkpoint file exists on disk *)
  mutable since_checkpoint : int;
}

(* Scripted-replay context, set while [recover] re-runs a logged
   commit: [forced] maps view names to the error string their
   maintenance faulted with live — replay forces them straight back
   into quarantine instead of maintaining them. *)
type replay = { forced : (string * string) list }

(* Raised by replay in place of the originally injected fault; the
   registered printer returns the recorded rendering verbatim, so the
   quarantine a replayed fault produces carries the same [error] string
   the live one did. *)
exception Replayed of string

let () =
  Printexc.register_printer (function
    | Replayed msg -> Some msg
    | _ -> None)

type t = {
  db : Database.t;
  catalog : Database.t;
      (* the user's base relations (by reference) plus every view's
         materialization under the view's name: the scope dependent
         views are defined and evaluated in *)
  domains : int;
  pool : Exec.Pool.t;
  policy : Resilience.Policy.t;
  retry : Resilience.Retry.policy;
  schedule : Resilience.Retry.schedule;
  mutable commit_seq : int;
  mutable entries : entry list; (* in definition order *)
  mutable durable : durable option;
  mutable replay : replay option;
}

let replaying mgr = Option.is_some mgr.replay

let forced_error mgr name =
  match mgr.replay with
  | Some r -> List.assoc_opt name r.forced
  | None -> None

(* Explicit argument beats the IVM_DOMAINS environment override beats the
   sequential default.  Pools come from the process-wide shared registry:
   managers are cheap and numerous (tests create hundreds), so they must
   not own worker domains. *)
(* Base relations join the catalog by reference, so base updates are
   visible through both databases; relations registered into the user's
   database after the manager was created are picked up lazily. *)
let sync_catalog mgr =
  List.iter
    (fun name ->
      if not (Database.mem mgr.catalog name) then
        Database.register mgr.catalog name (Database.find mgr.db name))
    (Database.names mgr.db)

let create ?domains ?(policy = Resilience.Policy.Abort)
    ?(retry = Resilience.Retry.default)
    ?(heal_schedule = Resilience.Retry.default_schedule) ?flight_dir
    ?durability db =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Option.value ~default:1 (Exec.Pool.env_domains ())
  in
  Option.iter (fun dir -> Resilience.Flight.set_dir (Some dir)) flight_dir;
  let durable =
    Option.map
      (fun (config : Durability.Config.t) ->
        let wal, tail =
          Durability.Wal.open_ ~fsync:config.Durability.Config.fsync
            (Durability.Config.wal_path config)
        in
        let baselined =
          Sys.file_exists (Durability.Config.checkpoint_path config)
        in
        {
          config;
          wal;
          tail;
          (* Any surviving durable state means a previous incarnation got
             further than we have: recovery must replay it before this
             manager may move. *)
          needs_recovery = tail <> [] || baselined;
          appended = false;
          baselined;
          since_checkpoint = 0;
        })
      durability
  in
  let mgr =
    {
      db;
      catalog = Database.create ();
      domains;
      pool = Exec.Pool.shared ~domains;
      policy;
      retry;
      schedule = heal_schedule;
      commit_seq = 0;
      entries = [];
      durable;
      replay = None;
    }
  in
  sync_catalog mgr;
  mgr

let policy mgr = mgr.policy
let commit_seq mgr = mgr.commit_seq

let database mgr = mgr.db
let domains mgr = mgr.domains

let entry_opt mgr name =
  List.find_opt (fun e -> String.equal (View.name e.view) name) mgr.entries

exception Rejected of Analysis.Diagnostic.t list

let define_view mgr ~name ?(mode = Immediate)
    ?(options = Maintenance.default_options) ?(force = false) ?(keys = []) expr
    =
  if Option.is_some (entry_opt mgr name) then
    invalid_arg (Printf.sprintf "Manager.define_view: %S already exists" name);
  (match mgr.durable with
  | Some d when d.appended ->
    (* The WAL's Commit records name views by assuming the definition
       set is fixed; a view defined mid-log could not be replayed. *)
    invalid_arg
      (Printf.sprintf
         "Manager.define_view: %S — durable managers must define every \
          view before the first logged commit"
         name)
  | Some _ | None -> ());
  sync_catalog mgr;
  (* Views resolve their sources in the catalog, so a source name may be
     an earlier-defined view: that makes this definition a dependent
     (child) view, maintained from its parents' committed deltas. *)
  let parents =
    List.sort_uniq String.compare
      (List.filter
         (fun n -> Option.is_some (entry_opt mgr n))
         (Query.Expr.base_names expr))
  in
  if mode = Deferred && parents <> [] then
    invalid_arg
      (Printf.sprintf
         "Manager.define_view: %S reads views (%s) and cannot be Deferred — \
          parent deltas flow only through immediate commits"
         name
         (String.concat ", " parents));
  List.iter
    (fun p ->
      if (Option.get (entry_opt mgr p)).mode = Deferred then
        invalid_arg
          (Printf.sprintf
             "Manager.define_view: %S reads deferred view %S — only \
              immediate views can feed dependents"
             name p))
    parents;
  (* Lint before materializing: a rejected definition should not pay for a
     full evaluation.  The analyzer sees the same tableau-minimized form
     that View.define maintains.  [view_name] arms the IVM062 cycle check:
     a definition can only reference already-registered names, so the one
     representable cycle is a self-reference. *)
  let lookup relation = Relation.schema (Database.find mgr.catalog relation) in
  let diagnostics =
    Analysis.Analyzer.run_expr ~view_name:name ~keys ~lookup expr
  in
  if (not force) && Analysis.Diagnostic.has_errors diagnostics then
    raise (Rejected diagnostics);
  let view = View.define ~keys ~name ~db:mgr.catalog expr in
  Database.register mgr.catalog name (View.contents view);
  mgr.entries <-
    mgr.entries
    @ [
        {
          view;
          mode;
          options;
          parents;
          pending = [];
          stats = empty_stats;
          health = Healthy;
        };
      ];
  view

let entry mgr name =
  match entry_opt mgr name with
  | Some e -> e
  | None -> raise Not_found

let create_index mgr ~relation ~attrs =
  ignore (Index.build (Database.find mgr.db relation) attrs)

let view mgr name = (entry mgr name).view
let stats mgr name = (entry mgr name).stats

(* ------------------------------------------------------------------ *)
(* Durability: state capture/restore and the WAL append path.          *)

(* Health crosses the durability boundary without its backtrace: a
   backtrace is diagnostic text about one process, not engine state,
   and dropping it is what lets a recovered quarantine compare equal
   to the live one it mirrors. *)
let health_to_state = function
  | Healthy -> Durability.State.Healthy
  | Quarantined q ->
    Durability.State.Quarantined
      {
        error = q.error;
        since = q.since;
        heal_failures = q.heal_failures;
        next_eligible = q.next_eligible;
      }
  | Disabled q ->
    Durability.State.Disabled
      { error = q.error; since = q.since; heal_failures = q.heal_failures }

let health_of_state = function
  | Durability.State.Healthy -> Healthy
  | Durability.State.Quarantined { error; since; heal_failures; next_eligible }
    ->
    Quarantined
      { error; backtrace = "<recovered>"; since; heal_failures; next_eligible }
  | Durability.State.Disabled { error; since; heal_failures } ->
    Disabled
      {
        error;
        backtrace = "<recovered>";
        since;
        heal_failures;
        next_eligible = since;
      }

(* A deep serializable image of everything recovery must restore: base
   relations, every materialization (inner state of grouped views
   included), banked pending deltas, health, and the (seq, lsn)
   position.  Per-view stats are observability, not state, and are
   deliberately not durable. *)
let capture_state mgr =
  sync_catalog mgr;
  {
    Durability.State.seq = mgr.commit_seq;
    lsn =
      (match mgr.durable with
      | Some d -> Durability.Wal.last_lsn d.wal
      | None -> 0);
    relations =
      List.map
        (fun name -> (name, Relation.copy (Database.find mgr.db name)))
        (Database.names mgr.db);
    views =
      List.map
        (fun e ->
          {
            Durability.State.view = View.name e.view;
            health = health_to_state e.health;
            contents = Relation.copy (View.contents e.view);
            grouped =
              Option.map
                (fun g -> Relation.copy (Grouped.inner g))
                (View.grouped e.view);
            pending =
              List.map
                (fun (relation, (d : Delta.t)) ->
                  ( relation,
                    Relation.copy d.Delta.inserts,
                    Relation.copy d.Delta.deletes ))
                e.pending;
          })
        mgr.entries;
  }

(* Restore a captured image in place.  [Relation.assign] overwrites the
   live relations through their existing handles, so the catalog (and
   any dependent view reading through it) stays wired.  Views the
   checkpoint does not know were defined after it was written — over
   exactly the state it captures — so recomputing them against the
   restored state reproduces their definition-time contents. *)
let install_state mgr (st : Durability.State.t) =
  sync_catalog mgr;
  List.iter
    (fun (name, src) ->
      match Database.find mgr.db name with
      | into -> Relation.assign ~into ~src
      | exception Not_found ->
        invalid_arg
          (Printf.sprintf
             "Manager.recover: checkpoint names unknown base relation %S"
             name))
    st.Durability.State.relations;
  List.iter
    (fun (vs : Durability.State.view_state) ->
      match entry_opt mgr vs.Durability.State.view with
      | None ->
        invalid_arg
          (Printf.sprintf "Manager.recover: checkpoint names undefined view %S"
             vs.Durability.State.view)
      | Some e ->
        (match (View.grouped e.view, vs.Durability.State.grouped) with
        | Some g, Some inner ->
          Relation.assign ~into:(Grouped.inner g) ~src:inner;
          Grouped.rebuild g
        | None, None -> ()
        | Some _, None | None, Some _ ->
          invalid_arg
            (Printf.sprintf
               "Manager.recover: view %S disagrees with the checkpoint about \
                being grouped"
               vs.Durability.State.view));
        Relation.assign ~into:(View.contents e.view)
          ~src:vs.Durability.State.contents;
        e.pending <-
          List.map
            (fun (relation, inserts, deletes) ->
              ( relation,
                {
                  Delta.inserts = Relation.copy inserts;
                  deletes = Relation.copy deletes;
                } ))
            vs.Durability.State.pending;
        e.health <- health_of_state vs.Durability.State.health)
    st.Durability.State.views;
  let covered =
    List.map (fun (vs : Durability.State.view_state) -> vs.Durability.State.view)
      st.Durability.State.views
  in
  List.iter
    (fun e ->
      if not (List.mem (View.name e.view) covered) then begin
        View.recompute e.view mgr.catalog;
        e.pending <- [];
        e.health <- Healthy
      end)
    mgr.entries;
  mgr.commit_seq <- st.Durability.State.seq

let write_checkpoint mgr d =
  Resilience.Fault.point "wal-checkpoint";
  Durability.Checkpoint.write
    (Durability.Config.checkpoint_path d.config)
    (capture_state mgr);
  d.baselined <- true;
  Resilience.Fault.point "wal-truncate";
  Durability.Wal.truncate_to_header d.wal;
  d.since_checkpoint <- 0

(* Every durable operation starts by making sure a baseline checkpoint
   of the {e pre-operation} state exists: the first WAL record replays
   on top of it.  (Called before any mutation, so the image is the
   state record 1 starts from.) *)
let ensure_baseline mgr =
  match mgr.durable with
  | Some d when (not d.baselined) && not (replaying mgr) ->
    write_checkpoint mgr d
  | Some _ | None -> ()

let wal_append mgr record =
  match mgr.durable with
  | Some d when not (replaying mgr) ->
    Resilience.Fault.point "wal-append";
    ignore (Durability.Wal.append d.wal record);
    d.appended <- true;
    d.since_checkpoint <- d.since_checkpoint + 1;
    Resilience.Fault.point "wal-fsync";
    Durability.Wal.maybe_sync d.wal;
    let every = d.config.Durability.Config.checkpoint_every in
    if every > 0 && d.since_checkpoint >= every then write_checkpoint mgr d
  | Some _ | None -> ()

let durable mgr = Option.is_some mgr.durable

let wal_lsn mgr =
  match mgr.durable with
  | Some d -> Durability.Wal.last_lsn d.wal
  | None -> 0

let heal_schedule mgr = mgr.schedule

let require_recovered ~op mgr =
  match mgr.durable with
  | Some d when d.needs_recovery && not (replaying mgr) ->
    failwith
      (Printf.sprintf
         "%s: the durability directory holds state from an earlier run — \
          call Manager.recover first"
         op)
  | Some _ | None -> ()

let pp_stats ppf s =
  Format.fprintf ppf
    "%d commits (%d recomputed, %d self-maintained), %d rows evaluated, \
     screened %d/%d, +%d -%d view tuples, %s maintenance"
    s.commits s.recomputations s.self_maintained s.rows_evaluated
    s.screened_out
    (s.screened_out + s.screened_kept)
    s.tuples_inserted s.tuples_deleted
    (Obs.Summary.fmt_ns s.maintenance_ns);
  if s.advisor_decisions > 0 then
    Format.fprintf ppf
      "; advisor: %d/%d agree, predicted diff=%.0f rec=%.0f units"
      s.advisor_agreements s.advisor_decisions s.predicted_differential_cost
      s.predicted_recompute_cost

let view_names mgr = List.map (fun e -> View.name e.view) mgr.entries
let pending mgr name = (entry mgr name).pending

(* Does this transaction's net effect touch any source of the view?  The
   advisor's prediction is only a calibration sample when there is actual
   maintenance work to measure. *)
let net_touches view net =
  List.exists
    (fun (s : Query.Spj.source) ->
      match List.assoc_opt s.Query.Spj.relation net with
      | Some (inserts, deletes) -> inserts <> [] || deletes <> []
      | None -> false)
    (View.spj view).Query.Spj.sources

(* Accumulate a transaction's net effect into a deferred view's pending
   deltas, composing with what is already queued. *)
let accumulate mgr e net =
  let relations_of_view =
    List.sort_uniq String.compare
      (List.map
         (fun (s : Query.Spj.source) -> s.Query.Spj.relation)
         (View.spj e.view).Query.Spj.sources)
  in
  List.iter
    (fun (relation, (inserts, deletes)) ->
      if List.mem relation relations_of_view then begin
        let schema = Relation.schema (Database.find mgr.catalog relation) in
        let incoming = Delta.of_lists schema (inserts, deletes) in
        let composed =
          match List.assoc_opt relation e.pending with
          | None -> incoming
          | Some existing -> Delta.compose ~first:existing ~second:incoming
        in
        e.pending <-
          (relation, composed) :: List.remove_assoc relation e.pending
      end)
    net

(* A logged commit carrying [Faulted] outcomes committed under the
   [Quarantine] policy: its base deltas landed and the faulted views
   were quarantined.  Replay reproduces that semantics even if the
   recovering manager was configured with a different policy — under
   [Abort] the forced fault would otherwise roll the whole record back
   and silently lose its net. *)
let effective_policy mgr =
  match mgr.replay with
  | Some { forced = _ :: _ } -> Resilience.Policy.Quarantine
  | Some { forced = [] } | None -> mgr.policy

let protected_ mgr = effective_policy mgr <> Resilience.Policy.Unprotected

(* One provenance view record from a finished maintenance report — plain
   strings only, the obs layer cannot see core's types. *)
let provenance_view (r : Maintenance.report) =
  {
    Obs.Provenance.view = r.Maintenance.view_name;
    strategy = Maintenance.strategy_name r.Maintenance.strategy_used;
    fallback = r.Maintenance.fallback;
    advisor =
      Option.map
        (fun (d : Advisor.decision) ->
          {
            Obs.Provenance.predicted_differential = d.Advisor.differential_cost;
            predicted_recompute = d.Advisor.recompute_cost;
            predicted_self_maintain = d.Advisor.self_maintain_cost;
            chosen = Advisor.arm_name d.Advisor.choose;
          })
        r.Maintenance.advisor;
    screen_rules = r.Maintenance.screen_rules;
    screened_kept = r.Maintenance.screened_kept;
    screened_out = r.Maintenance.screened_out;
    rows_evaluated = r.Maintenance.rows_evaluated;
    delta_inserts = r.Maintenance.delta_inserts;
    delta_deletes = r.Maintenance.delta_deletes;
    groups_touched = r.Maintenance.groups_touched;
    rescans = r.Maintenance.rescans;
    screen_ns = r.Maintenance.screen_ns;
    eval_ns = r.Maintenance.eval_ns;
    apply_ns = r.Maintenance.apply_ns;
    total_ns = r.Maintenance.total_ns;
  }

let provenance_net net =
  List.map
    (fun (relation, (inserts, deletes)) ->
      (relation, (List.length inserts, List.length deletes)))
    net

(* Differential drain of a view's composed pending deltas — the
   snapshot-refresh core, shared by deferred [refresh] and the
   quarantine self-heal.  The current base state S is S0 U i_N - d_N
   relative to the view's last consistent point S0; the old parts the
   truth table needs are r° = S0 - d_N = S - i_N, so we temporarily
   remove the composed insertions, evaluate, and put them back.

   The rewind/restore is failure-hardened: restore happens in a single
   [Fun.protect] finally, re-adds exactly the tuples that were removed
   (consuming the list, so it cannot run twice), and debug-asserts that
   rewind + restore was a net no-op on every touched base counter.  On
   a protected manager the view-side delta apply is journaled, so a
   mid-apply failure rolls the materialization back instead of leaving
   a half-applied delta. *)
(* [drain_deltas mgr e pending] also serves the dependents phase of
   {!commit}, where [pending] holds the parents' committed view deltas:
   those are counted relations, so the net expansion repeats a tuple
   once per count (a unit-count [List.map fst] would silently drop
   multiplicity and desynchronize the child). *)
let drain_deltas mgr e ?journal pending =
  let expand r =
    List.concat_map
      (fun (t, c) -> List.init c (fun _ -> t))
      (Relation.elements r)
  in
  let net =
    Transaction.of_sets
      (List.map
         (fun (relation, (d : Delta.t)) ->
           (relation, (expand d.Delta.inserts, expand d.Delta.deletes)))
         pending)
  in
  (* The drain always runs differentially, but the decision is still
     recorded for calibration. *)
  let decision = Advisor.decide e.view ~db:mgr.catalog ~net in
  let journal =
    match journal with
    | Some _ as j -> j
    | None ->
      if protected_ mgr then Some (Resilience.Journal.create ()) else None
  in
  let totals =
    List.map
      (fun (relation, _) ->
        (relation, Relation.total (Database.find mgr.catalog relation)))
      net
  in
  let removed = ref [] in
  Fun.protect
    ~finally:(fun () ->
      let rs = !removed in
      removed := [];
      List.iter (fun (r, t) -> Relation.add r t) rs;
      assert (
        List.for_all
          (fun (relation, total) ->
            Relation.total (Database.find mgr.catalog relation) = total)
          totals))
    (fun () ->
      List.iter
        (fun (relation, (inserts, _)) ->
          let r = Database.find mgr.catalog relation in
          List.iter
            (fun t ->
              Relation.remove r t;
              removed := (r, t) :: !removed)
            inserts)
        net;
      match
        Maintenance.maintain_differential ~options:e.options ~pool:mgr.pool
          ?journal ~decision:(Some decision) e.view ~db:mgr.catalog ~net
      with
      | report -> report
      | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        Option.iter Resilience.Journal.rollback journal;
        Printexc.raise_with_backtrace exn bt)

let drain_pending mgr e = drain_deltas mgr e e.pending

(* After a quarantined view heals (or is repaired) by jumping straight
   to a fresh state, its dependents never saw the jump as a delta; the
   always-correct fallback brings the whole subtree back in one pass,
   in definition order (parents recompute before their children read
   them).  A quarantined or disabled dependent is fixed by the same
   recompute, so it comes back healthy too. *)
let refresh_dependents mgr name =
  let affected = ref [ name ] in
  List.iter
    (fun e ->
      if List.exists (fun p -> List.mem p !affected) e.parents then begin
        affected := View.name e.view :: !affected;
        View.recompute e.view mgr.catalog;
        e.pending <- [];
        match e.health with
        | Healthy -> ()
        | Quarantined _ | Disabled _ ->
          e.health <- Healthy;
          Obs.Metrics.add "ivm_resilience_repairs_total"
            ~labels:[ ("kind", "cascade") ]
            1
      end)
    mgr.entries

(* One self-heal round for a quarantined view: a retry budget of
   differential drains of the pending deltas (transient faults clear on
   retry), then a retry budget of full recomputes — the paper's
   always-correct fallback, which also absorbs corruption the
   differential path cannot explain.  A round that exhausts both
   budgets counts one heal failure and pushes the next automatic
   attempt [Retry.heal_delay] commits out (the configurable backoff
   ladder); [schedule.rounds] failures disable the view until an
   explicit [repair].  Explicit [heal]/[consistent] calls bypass the
   backoff gate — only the commit-start auto-heal honours it. *)
let heal_entry mgr e =
  match e.health with
  | Healthy -> true
  | Disabled _ -> false
  | Quarantined _
    when List.exists
           (fun pe ->
             List.mem (View.name pe.view) e.parents && pe.health <> Healthy)
           mgr.entries ->
    (* Draining this child's banked inputs would read a stale parent
       (and the inputs may be missing the parent deltas that were never
       produced).  Stay quarantined without consuming heal budget: the
       parent's own heal recomputes the whole subtree
       ([refresh_dependents]) and marks this view healthy. *)
    false
  | Quarantined q ->
    Obs.Span.with_span "heal"
      ~args:(fun () -> [ ("view", Obs.Json.Str (View.name e.view)) ])
      (fun () ->
        let finish report =
          e.pending <- [];
          e.stats <- add_report e.stats report;
          e.health <- Healthy;
          Obs.Metrics.add "ivm_resilience_repairs_total"
            ~labels:[ ("kind", "self_heal") ]
            1;
          (* The heal moved this view without emitting a delta; dependents
             must follow. *)
          refresh_dependents mgr (View.name e.view);
          true
        in
        let differential =
          if e.pending = [] then
            (* Stale by an unknown amount (no recorded deltas): only a
               recompute can help. *)
            Error (Not_found, Printexc.get_callstack 0)
          else
            Resilience.Retry.run ~label:"heal-differential" mgr.retry (fun () ->
                drain_pending mgr e)
        in
        match differential with
        | Ok report -> finish report
        | Error _ -> (
          match
            Resilience.Retry.run ~label:"heal-recompute" mgr.retry (fun () ->
                Maintenance.maintain_recompute ~decision:None e.view
                  ~db:mgr.catalog)
          with
          | Ok report -> finish report
          | Error (err, bt) ->
            let failures = q.heal_failures + 1 in
            let q' =
              {
                error = Printexc.to_string err;
                backtrace = Printexc.raw_backtrace_to_string bt;
                since = q.since;
                heal_failures = failures;
                next_eligible =
                  mgr.commit_seq + 1
                  + Resilience.Retry.heal_delay mgr.schedule ~failures;
              }
            in
            e.health <-
              (if failures >= mgr.schedule.Resilience.Retry.rounds then
                 Disabled q'
               else Quarantined q');
            false))

(* Heal with WAL logging: a standalone [Heal] record lands whenever the
   attempt changed the view's health (success or a consumed failure
   round), so recovery can reproduce the transition. *)
let heal_logged mgr e =
  ensure_baseline mgr;
  let before = e.health in
  let healed = heal_entry mgr e in
  if before <> e.health then
    wal_append mgr
      (Durability.Record.Heal
         {
           seq = mgr.commit_seq;
           change =
             {
               Durability.Record.view = View.name e.view;
               healed;
               health = health_to_state e.health;
             };
         });
  healed

let commit mgr txn =
  Obs.Span.with_span "commit"
    ~args:(fun () ->
      [
        ("views", Obs.Json.Int (List.length mgr.entries));
        ("domains", Obs.Json.Int mgr.domains);
      ])
    (fun () ->
      let t_start = Obs.Clock.now_ns () in
      (* Provenance accumulators: noteworthy pipeline events and the
         reports of views that finished, so even an aborted commit's
         record shows what completed before the failing phase. *)
      let events = ref [] in
      let completed : Maintenance.report list ref = ref [] in
      let event ~phase ~kind detail =
        events := { Obs.Provenance.phase; kind; detail } :: !events
      in
      (* WAL bookkeeping for this commit attempt: the health transitions
         the commit-start auto-heal produced, and each participating
         view's outcome.  Exactly one [Commit] record lands per attempt
         (the abort path logs heals + an empty net). *)
      let wal_heals : Durability.Record.health_change list ref = ref [] in
      let wal_outcomes : (string * Durability.Record.outcome) list ref =
        ref []
      in
      (match mgr.durable with
      | Some _ when not (replaying mgr) ->
        require_recovered ~op:"Manager.commit" mgr;
        ensure_baseline mgr;
        (* Crash point before anything moves: a simulated death here
           recovers to the pre-commit state. *)
        Resilience.Fault.point "wal-apply"
      | Some _ | None -> ());
      (* Views quarantined by an earlier commit self-heal before this
         one runs, so a healed view takes part in it normally — gated by
         the backoff ladder's eligibility point.  Replay skips the loop:
         the recorded transitions are re-applied by [recover] itself. *)
      if not (replaying mgr) then
        List.iter
          (fun e ->
            match e.health with
            | Quarantined q when mgr.commit_seq + 1 >= q.next_eligible ->
              let before = e.health in
              let healed = heal_entry mgr e in
              if before <> e.health then
                wal_heals :=
                  {
                    Durability.Record.view = View.name e.view;
                    healed;
                    health = health_to_state e.health;
                  }
                  :: !wal_heals
            | Healthy | Quarantined _ | Disabled _ -> ())
          mgr.entries;
      mgr.commit_seq <- mgr.commit_seq + 1;
      let net =
        Obs.Span.with_span "net"
          ~args:(fun () -> [ ("ops", Obs.Json.Int (List.length txn)) ])
          (fun () -> Transaction.net_effect mgr.db txn)
      in
      let journal =
        if protected_ mgr then Some (Resilience.Journal.create ()) else None
      in
      (* Resolve strategies against the pre-state, before any part of
         the net effect is installed.  Only immediate, healthy views the
         transaction actually touches take part: untouched views skip
         maintenance entirely (their report and stats are unchanged),
         and quarantined views are already stale — their share of the
         net accumulates for the self-heal instead.  The advisor runs
         for every participant — also under forced strategies — so the
         cost model gathers calibration data on every commit. *)
      (* Dependent (child) views never join the base phases: their input
         is their parents' committed deltas, which only exist after the
         parents have been maintained — the dependents phase below. *)
      let resolved =
        List.filter_map
          (fun e ->
            match (e.mode, e.health) with
            | Deferred, _ | _, (Quarantined _ | Disabled _) -> None
            | Immediate, Healthy when e.parents <> [] -> None
            | Immediate, Healthy ->
              if net_touches e.view net then
                let strategy, decision =
                  Maintenance.resolve_with_decision e.options e.view
                    ~db:mgr.catalog ~net
                in
                (* Provenance wants to know when a requested
                   self-maintenance could not run on this commit. *)
                let fallback =
                  match e.options.Maintenance.strategy with
                  | Maintenance.Self_maintain ->
                    Maintenance.self_maintain_fallback e.view ~net
                  | _ -> None
                in
                Some (e, strategy, Some decision, fallback)
              else None)
          mgr.entries
      in
      (* A failure anywhere in the pipeline rolls the whole commit back
         to the exact pre-commit state and raises [Commit_failed];
         under [Unprotected] there is no journal and the original
         exception escapes mid-pipeline (the legacy torn behaviour). *)
      let abort ~phase ~error ~bt outcomes =
        let journal_bytes = Option.map Resilience.Journal.bytes journal in
        Option.iter
          (fun j ->
            Obs.Span.with_span "rollback"
              ~args:(fun () -> [ ("phase", Obs.Json.Str phase) ])
              (fun () -> Resilience.Journal.rollback j);
            Obs.Metrics.add "ivm_resilience_rollbacks_total"
              ~labels:[ ("scope", "commit") ]
              1;
            event ~phase ~kind:"rollback"
              (Printf.sprintf "commit journal rolled back (%d bytes)"
                 (Option.value ~default:0 journal_bytes)))
          journal;
        event ~phase ~kind:"abort" (Printexc.to_string error);
        Obs.Provenance.record
          {
            Obs.Provenance.seq = mgr.commit_seq;
            kind = "commit";
            outcome = "aborted";
            failing_phase = Some phase;
            domains = mgr.domains;
            net = provenance_net net;
            views = List.map provenance_view !completed;
            events = List.rev !events;
            journal_bytes;
            total_ns = Obs.Clock.now_ns () - t_start;
          };
        (* Post-mortem to disk while the failure context is still whole:
           the dump carries this aborted record (failing phase included)
           plus the ring of commits that led up to it. *)
        ignore (Resilience.Flight.dump ~reason:("commit-failed-" ^ phase));
        (* The aborted attempt still consumed heal rounds and a sequence
           number; its record carries those and nothing else. *)
        wal_append mgr
          (Durability.Record.Commit
             {
               seq = mgr.commit_seq;
               heals = List.rev !wal_heals;
               net = [];
               outcomes = [];
             });
        raise
          (Commit_failed
             {
               phase;
               error = Printexc.to_string error;
               backtrace = Printexc.raw_backtrace_to_string bt;
               outcomes;
             })
      in
      (* Per-view outcomes for [Commit_failed]: what each resolved view
         was doing when the commit died.  [succeeded] accumulates across
         phases, so a recompute-phase failure reports the differential
         phase's views as rolled back, not unreached. *)
      let succeeded : entry list ref = ref [] in
      let outcomes ~failures =
        List.map
          (fun (e, _, _, _) ->
            let name = View.name e.view in
            match List.find_opt (fun (f, _, _) -> f == e) failures with
            | Some (_, err, bt) ->
              ( name,
                Faulted
                  {
                    error = Printexc.to_string err;
                    backtrace = Printexc.raw_backtrace_to_string bt;
                  } )
            | None ->
              if List.memq e !succeeded then (name, Rolled_back)
              else (name, Unreached))
          resolved
      in
      let base_phase ~phase f =
        match f () with
        | () -> ()
        | exception exn when protected_ mgr ->
          let bt = Printexc.get_raw_backtrace () in
          abort ~phase ~error:exn ~bt (outcomes ~failures:[])
      in
      base_phase ~phase:"apply-deletes" (fun () ->
          Maintenance.apply_deletes ?journal mgr.db net);
      (* Fan the maintenance tasks out over the pool: once deletions are
         installed each task only reads base relations and writes its
         own view's materialization (through its own sub-journal), so
         tasks are data-independent.  [map_list_results] awaits all of
         them — one failing view must not abandon its siblings' futures
         — and journal merging, stats and health transitions stay on the
         committing domain, in definition order, after the barrier,
         which keeps commit fully deterministic. *)
      (* Task-granularity threshold, in the advisor's tuple-touch cost
         units (~10-50 ns each after calibration): consecutive view
         tasks predicted cheaper than this are coalesced into one pool
         submission, so a transaction touching many tiny views pays
         submission overhead once per bundle instead of once per view —
         the per-task overhead E18 showed dominating.  A task with no
         decision or a big predicted cost still travels alone. *)
      let coalesce_threshold = 20_000 in
      let task_cost (_, decision, _, kind, _) =
        match decision with
        | None -> coalesce_threshold
        | Some (d : Advisor.decision) ->
          let cost =
            match kind with
            | `Recompute -> d.Advisor.recompute_cost
            | `Self_maintain ->
              Option.value ~default:d.Advisor.differential_cost
                d.Advisor.self_maintain_cost
            | `Differential -> d.Advisor.differential_cost
          in
          int_of_float (Float.max 0.0 (Float.min cost 1e15))
      in
      let run_tasks ~phase tasks maintain =
        let wrap ((e, _, _, _, _) as task) =
          match
            (match forced_error mgr (View.name e.view) with
            | Some err ->
              (* Scripted replay: this view faulted live; reproduce the
                 recorded quarantine instead of maintaining. *)
              raise (Replayed err)
            | None -> ());
            Resilience.Fault.point "task";
            maintain task
          with
          | report -> Ok report
          | exception err -> Error (err, Printexc.get_raw_backtrace ())
        in
        let results =
          List.concat
            (Exec.Pool.map_list mgr.pool
               (fun group -> List.map wrap group)
               (Exec.Pool.coalesce ~cost:task_cost
                  ~threshold:coalesce_threshold tasks))
        in
        let oks = ref [] and failed = ref [] and quarantined = ref [] in
        List.iter2
          (fun (e, _, task_journal, _, _) result ->
            match result with
            | Ok report ->
              (match (journal, task_journal) with
              | Some main, Some sub -> Resilience.Journal.append ~into:main sub
              | _ -> ());
              oks := (e, report) :: !oks
            | Error (err, bt) -> (
              match effective_policy mgr with
              | Resilience.Policy.Unprotected ->
                if !failed = [] then failed := [ (e, err, bt) ]
              | Resilience.Policy.Abort ->
                (* The sub-journal joins the main journal so the global
                   rollback undoes this view's partial work too. *)
                (match (journal, task_journal) with
                | Some main, Some sub -> Resilience.Journal.append ~into:main sub
                | _ -> ());
                failed := (e, err, bt) :: !failed
              | Resilience.Policy.Quarantine ->
                Option.iter
                  (fun sub ->
                    Obs.Span.with_span "rollback"
                      ~args:(fun () ->
                        [ ("view", Obs.Json.Str (View.name e.view)) ])
                      (fun () -> Resilience.Journal.rollback sub);
                    Obs.Metrics.add "ivm_resilience_rollbacks_total"
                      ~labels:[ ("scope", "view") ]
                      1;
                    event ~phase ~kind:"view-rollback" (View.name e.view))
                  task_journal;
                event ~phase ~kind:"quarantine"
                  (View.name e.view ^ ": " ^ Printexc.to_string err);
                wal_outcomes :=
                  ( View.name e.view,
                    Durability.Record.Faulted (Printexc.to_string err) )
                  :: !wal_outcomes;
                quarantined := (e, err, bt) :: !quarantined))
          tasks results;
        let oks = List.rev !oks in
        succeeded := !succeeded @ List.map fst oks;
        completed := !completed @ List.map snd oks;
        (match (effective_policy mgr, List.rev !failed) with
        | _, [] -> ()
        | Resilience.Policy.Unprotected, (_, err, bt) :: _ ->
          Printexc.raise_with_backtrace err bt
        | _, ((_, err, bt) :: _ as failures) ->
          abort ~phase ~error:err ~bt (outcomes ~failures));
        (oks, List.rev !quarantined)
      in
      let task_journal () =
        if protected_ mgr then Some (Resilience.Journal.create ()) else None
      in
      (* Self-maintained views share the differential phase (both need
         the deletions-applied, insertions-pending base state — the
         self-maintained task only to leave it untouched, which the read
         probe inside [maintain_self_maintain] enforces). *)
      let differential_tasks =
        List.filter_map
          (fun (e, strategy, decision, fallback) ->
            match strategy with
            | Maintenance.Differential | Maintenance.Adaptive ->
              Some (e, decision, task_journal (), `Differential, fallback)
            | Maintenance.Self_maintain ->
              Some (e, decision, task_journal (), `Self_maintain, fallback)
            | Maintenance.Recompute -> None)
          resolved
      in
      let diff_ok, diff_quarantined =
        run_tasks ~phase:"maintain" differential_tasks
          (fun (e, decision, task_journal, kind, fallback) ->
            match kind with
            | `Self_maintain ->
              Maintenance.maintain_self_maintain ?journal:task_journal
                ~decision e.view ~net
            | `Differential ->
              Maintenance.maintain_differential ~options:e.options
                ~pool:mgr.pool ?journal:task_journal ?fallback ~decision e.view
                ~db:mgr.catalog ~net)
      in
      base_phase ~phase:"apply-inserts" (fun () ->
          Maintenance.apply_inserts ?journal mgr.db net);
      let recompute_tasks =
        List.filter_map
          (fun (e, strategy, decision, fallback) ->
            match strategy with
            | Maintenance.Recompute ->
              Some (e, decision, task_journal (), `Recompute, fallback)
            | Maintenance.Differential | Maintenance.Adaptive
            | Maintenance.Self_maintain ->
              None)
          resolved
      in
      (* A recompute yields no delta unless asked; parents of dependent
         views ask, so the dependents phase has something to consume. *)
      let dependent_parents =
        List.sort_uniq String.compare
          (List.concat_map (fun e -> e.parents) mgr.entries)
      in
      let has_dependents e = List.mem (View.name e.view) dependent_parents in
      let rec_ok, rec_quarantined =
        run_tasks ~phase:"recompute" recompute_tasks
          (fun (e, decision, task_journal, _, _) ->
            Maintenance.maintain_recompute ?journal:task_journal
              ~want_delta:(has_dependents e) ~decision e.view ~db:mgr.catalog)
      in
      (* Dependents phase: each view over views consumes its parents'
         committed deltas of this commit (and the base net, for mixed
         definitions), exactly once, in definition order — a parent is
         always defined (hence maintained) before its children, so a
         grandchild sees its parent's delta from this same pass.  The
         drain rewinds the already-applied insertions, so the truth
         table evaluates against the parents' pre-commit state.
         Sequential on the committing domain: the rewind mutates shared
         catalog relations, and the chain through a tower is inherently
         ordered. *)
      let applied : (string, Delta.t) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun ((e : entry), (r : Maintenance.report)) ->
          match r.Maintenance.delta with
          | Some d when not (Delta.is_empty d) ->
            Hashtbl.replace applied (View.name e.view) d
          | Some _ | None -> ())
        (diff_ok @ rec_ok);
      let child_inputs e =
        let sources =
          List.sort_uniq String.compare
            (List.map
               (fun (s : Query.Spj.source) -> s.Query.Spj.relation)
               (View.spj e.view).Query.Spj.sources)
        in
        List.filter_map
          (fun relation ->
            match Hashtbl.find_opt applied relation with
            | Some d -> Some (relation, d)
            | None ->
              if List.mem relation e.parents then None
              else (
                match List.assoc_opt relation net with
                | Some (inserts, deletes)
                  when inserts <> [] || deletes <> [] ->
                  let schema =
                    Relation.schema (Database.find mgr.catalog relation)
                  in
                  Some (relation, Delta.of_lists schema (inserts, deletes))
                | Some _ | None -> None))
          sources
      in
      let bank_inputs e inputs =
        List.iter
          (fun (relation, (d : Delta.t)) ->
            let composed =
              match List.assoc_opt relation e.pending with
              | None -> Delta.copy d
              | Some existing ->
                Delta.merge_into ~into:existing d;
                Delta.normalize existing
            in
            e.pending <-
              (relation, composed) :: List.remove_assoc relation e.pending)
          inputs
      in
      let dep_ok = ref [] and dep_quarantined = ref [] in
      (* Views that missed this commit: unhealthy before it, or faulted
         (and were quarantined) during it.  A healthy child of such a
         view cannot be maintained — the parent delta it needs was never
         produced — and whatever it holds is stale the moment the parent
         is, so staleness cascades down the tower: the child quarantines
         too and the parent's heal recomputes the subtree. *)
      let stale = ref [] in
      List.iter
        (fun e -> if e.health <> Healthy then stale := View.name e.view :: !stale)
        mgr.entries;
      List.iter
        (fun ((e : entry), _, _) -> stale := View.name e.view :: !stale)
        (diff_quarantined @ rec_quarantined);
      List.iter
        (fun e ->
          if e.parents <> [] then begin
            let inputs = child_inputs e in
            let stale_parents =
              List.filter (fun p -> List.mem p !stale) e.parents
            in
            if stale_parents <> [] then begin
              if inputs <> [] then bank_inputs e inputs;
              stale := View.name e.view :: !stale;
              match e.health with
              | Quarantined _ | Disabled _ -> ()
              | Healthy ->
                let detail =
                  Printf.sprintf "%s: stale parent %s" (View.name e.view)
                    (String.concat ", " stale_parents)
                in
                event ~phase:"dependents" ~kind:"quarantine" detail;
                (* A cascade quarantine re-emerges organically from the
                   replayed parents; the record is informational. *)
                wal_outcomes :=
                  (View.name e.view, Durability.Record.Cascade detail)
                  :: !wal_outcomes;
                dep_quarantined :=
                  (e, Failure detail, Printexc.get_callstack 0)
                  :: !dep_quarantined
            end
            else if inputs <> [] then begin
              match e.health with
              | Quarantined _ | Disabled _ ->
                (* Already stale: bank this commit's inputs for the
                   self-heal drain instead of maintaining on top of a
                   rolled-back state. *)
                bank_inputs e inputs
              | Healthy -> (
                let sub = task_journal () in
                match
                  (match forced_error mgr (View.name e.view) with
                  | Some err -> raise (Replayed err)
                  | None -> ());
                  Resilience.Fault.point "task";
                  drain_deltas mgr e ?journal:sub inputs
                with
                | report ->
                  (match (journal, sub) with
                  | Some main, Some s ->
                    Resilience.Journal.append ~into:main s
                  | _ -> ());
                  (match report.Maintenance.delta with
                  | Some d when not (Delta.is_empty d) ->
                    Hashtbl.replace applied (View.name e.view) d
                  | Some _ | None -> ());
                  succeeded := !succeeded @ [ e ];
                  completed := !completed @ [ report ];
                  dep_ok := (e, report) :: !dep_ok
                | exception err -> (
                  let bt = Printexc.get_raw_backtrace () in
                  (* [drain_deltas] rolled the sub-journal back before
                     re-raising, so the child holds its pre-commit
                     state. *)
                  match effective_policy mgr with
                  | Resilience.Policy.Unprotected ->
                    Printexc.raise_with_backtrace err bt
                  | Resilience.Policy.Abort ->
                    abort ~phase:"dependents" ~error:err ~bt
                      (outcomes ~failures:[]
                      @ [
                          ( View.name e.view,
                            Faulted
                              {
                                error = Printexc.to_string err;
                                backtrace =
                                  Printexc.raw_backtrace_to_string bt;
                              } );
                        ])
                  | Resilience.Policy.Quarantine ->
                    event ~phase:"dependents" ~kind:"quarantine"
                      (View.name e.view ^ ": " ^ Printexc.to_string err);
                    wal_outcomes :=
                      ( View.name e.view,
                        Durability.Record.Faulted (Printexc.to_string err) )
                      :: !wal_outcomes;
                    bank_inputs e inputs;
                    stale := View.name e.view :: !stale;
                    dep_quarantined := (e, err, bt) :: !dep_quarantined))
            end
          end)
        mgr.entries;
      let dep_ok = List.rev !dep_ok
      and dep_quarantined = List.rev !dep_quarantined in
      (* The whole pipeline succeeded (or degraded to per-view
         quarantines): only now do stats and health transitions land, so
         an aborted commit leaves them untouched. *)
      List.iter
        (fun (e, report) -> e.stats <- add_report e.stats report)
        (diff_ok @ rec_ok @ dep_ok);
      List.iter
        (fun (e, err, bt) ->
          e.health <-
            Quarantined
              {
                error = Printexc.to_string err;
                backtrace = Printexc.raw_backtrace_to_string bt;
                since = mgr.commit_seq;
                heal_failures = 0;
                (* A fresh quarantine is eligible for its first heal on
                   the very next commit; backoff starts after that first
                   round fails. *)
                next_eligible = mgr.commit_seq + 1;
              };
          Obs.Metrics.add "ivm_resilience_quarantines_total"
            ~labels:[ ("view", View.name e.view) ]
            1)
        (diff_quarantined @ rec_quarantined @ dep_quarantined);
      (* Deferred views bank the net for their next refresh; quarantined
         views (old and new) bank it for the self-heal's differential
         drain.  Dependent views banked their inputs (parent deltas
         included) in the dependents phase already. *)
      List.iter
        (fun e ->
          if e.parents = [] then
            match (e.mode, e.health) with
            | Deferred, _ | Immediate, Quarantined _ -> accumulate mgr e net
            | Immediate, (Healthy | Disabled _) -> ())
        mgr.entries;
      Option.iter
        (fun j ->
          Obs.Metrics.observe "ivm_resilience_journal_bytes"
            (Resilience.Journal.bytes j))
        journal;
      let quarantined_now =
        diff_quarantined @ rec_quarantined @ dep_quarantined
      in
      Obs.Provenance.record
        {
          Obs.Provenance.seq = mgr.commit_seq;
          kind = "commit";
          outcome = (if quarantined_now = [] then "committed" else "degraded");
          failing_phase = None;
          domains = mgr.domains;
          net = provenance_net net;
          views = List.map provenance_view !completed;
          events = List.rev !events;
          journal_bytes = Option.map Resilience.Journal.bytes journal;
          total_ns = Obs.Clock.now_ns () - t_start;
        };
      if quarantined_now <> [] then
        ignore (Resilience.Flight.dump ~reason:"quarantine");
      (* Durability point: the commit exists once its record is framed,
         checksummed and (policy permitting) fsynced.  Group commit is
         the [Every n] fsync policy — netted concurrent writers already
         share this one record, and [n] such records share one sync. *)
      wal_append mgr
        (Durability.Record.Commit
           {
             seq = mgr.commit_seq;
             heals = List.rev !wal_heals;
             net;
             outcomes =
               List.map
                 (fun (e, _) -> (View.name e.view, Durability.Record.Applied))
                 (diff_ok @ rec_ok @ dep_ok)
               @ List.rev !wal_outcomes;
           });
      List.map snd diff_ok @ List.map snd rec_ok @ List.map snd dep_ok)

let refresh mgr name =
  let e = entry mgr name in
  match e.mode with
  | Immediate -> None
  | Deferred ->
    if e.pending = [] then
      Some
        (Maintenance.empty_report ~view_name:name
           ~strategy_used:Maintenance.Differential)
    else
      Obs.Span.with_span "refresh"
        ~args:(fun () -> [ ("view", Obs.Json.Str name) ])
        (fun () ->
          let t_start = Obs.Clock.now_ns () in
          require_recovered ~op:"Manager.refresh" mgr;
          ensure_baseline mgr;
          let net_sizes =
            List.map
              (fun (relation, (d : Delta.t)) ->
                ( relation,
                  ( Relation.total d.Delta.inserts,
                    Relation.total d.Delta.deletes ) ))
              e.pending
          in
          let report = drain_pending mgr e in
          e.pending <- [];
          e.stats <- add_report e.stats report;
          wal_append mgr
            (Durability.Record.Refresh { seq = mgr.commit_seq; view = name });
          Obs.Provenance.record
            {
              Obs.Provenance.seq = mgr.commit_seq;
              kind = "refresh";
              outcome = "committed";
              failing_phase = None;
              domains = mgr.domains;
              net = net_sizes;
              views = [ provenance_view report ];
              events = [];
              journal_bytes = None;
              total_ns = Obs.Clock.now_ns () - t_start;
            };
          Some report)

let refresh_all mgr =
  List.filter_map (fun e -> refresh mgr (View.name e.view)) mgr.entries

let health mgr = List.map (fun e -> (View.name e.view, e.health)) mgr.entries
let view_health mgr name = (entry mgr name).health

let heal mgr name = heal_logged mgr (entry mgr name)

let repair mgr name =
  let e = entry mgr name in
  match e.health with
  | Healthy -> false
  | Quarantined _ | Disabled _ ->
    ensure_baseline mgr;
    (* The guaranteed escape hatch: a direct recompute, bypassing the
       instrumented (fault-injectable) maintenance path. *)
    View.recompute e.view mgr.catalog;
    e.pending <- [];
    e.health <- Healthy;
    Obs.Metrics.add "ivm_resilience_repairs_total" ~labels:[ ("kind", "repair") ]
      1;
    refresh_dependents mgr name;
    wal_append mgr
      (Durability.Record.Repair { seq = mgr.commit_seq; view = name });
    true

let consistent mgr name =
  let e = entry mgr name in
  (match e.health with
  | Quarantined _ -> ignore (heal_logged mgr e)
  | Healthy | Disabled _ -> ());
  match e.health with
  | Quarantined _ | Disabled _ -> false
  | Healthy -> (
    match e.mode with
    | Immediate -> View.consistent e.view mgr.catalog
    | Deferred ->
      (* A deferred view is consistent with the state its pending deltas
         rewind to; refreshing first makes it comparable. *)
      ignore (refresh mgr name);
      View.consistent e.view mgr.catalog)

let all_consistent mgr =
  List.for_all (fun e -> consistent mgr (View.name e.view)) mgr.entries

(* ------------------------------------------------------------------ *)
(* Crash recovery: checkpoint restore plus scripted WAL replay.        *)

type recovery = {
  checkpoint_seq : int;
  checkpoint_lsn : int;
  records_replayed : int;
  last_seq : int;
  last_lsn : int;
  torn_bytes : int;
}

let checkpoint mgr =
  match mgr.durable with
  | None -> invalid_arg "Manager.checkpoint: manager has no durability"
  | Some d ->
    require_recovered ~op:"Manager.checkpoint" mgr;
    write_checkpoint mgr d

let txn_of_net (net : Transaction.net) =
  List.concat_map
    (fun (relation, (inserts, deletes)) ->
      List.map (Transaction.insert relation) inserts
      @ List.map (Transaction.delete relation) deletes)
    net

(* Re-apply one recorded health transition.  A successful heal re-runs
   the live heal machinery — deterministic with faults disabled, and it
   reproduces the [refresh_dependents] cascade the live heal caused.  A
   failed round mutated nothing but the health word (the fault fires
   before any maintenance write), so replay just installs it. *)
let replay_heal mgr (h : Durability.Record.health_change) =
  let e = entry mgr h.Durability.Record.view in
  if h.Durability.Record.healed then begin
    if not (heal_entry mgr e) then
      failwith
        (Printf.sprintf
           "Manager.recover: replayed heal of %S did not converge"
           h.Durability.Record.view)
  end
  else e.health <- health_of_state h.Durability.Record.health

let replay_record mgr (record : Durability.Record.t) =
  let in_replay forced f =
    mgr.replay <- Some { forced };
    Fun.protect ~finally:(fun () -> mgr.replay <- None) f
  in
  match record with
  | Durability.Record.Commit { seq; heals; net; outcomes } ->
    (* The live commit bumped [seq - 1] to [seq]; rewind so the replayed
       one lands on the same number (and [since]/[next_eligible] words
       computed from it match bit for bit). *)
    mgr.commit_seq <- seq - 1;
    List.iter (replay_heal mgr) heals;
    let forced =
      List.filter_map
        (function
          | view, Durability.Record.Faulted err -> Some (view, err)
          | _, (Durability.Record.Applied | Durability.Record.Cascade _) ->
            None)
        outcomes
    in
    in_replay forced (fun () ->
        match commit mgr (txn_of_net net) with
        | (_ : Maintenance.report list) -> ()
        | exception Commit_failed _ ->
          (* The live attempt aborted too (empty net, empty outcomes):
             its surviving effects — heals and the sequence bump — are
             already in place. *)
          ())
  | Durability.Record.Heal { seq; change } ->
    mgr.commit_seq <- seq;
    replay_heal mgr change
  | Durability.Record.Repair { seq; view } ->
    mgr.commit_seq <- seq;
    in_replay [] (fun () -> ignore (repair mgr view))
  | Durability.Record.Refresh { seq; view } ->
    mgr.commit_seq <- seq;
    in_replay [] (fun () -> ignore (refresh mgr view))

let recover mgr =
  match mgr.durable with
  | None -> invalid_arg "Manager.recover: manager has no durability"
  | Some d when d.appended ->
    failwith
      "Manager.recover: this manager already logged commits — recovery is \
       only valid before the first append"
  | Some d ->
    Obs.Span.with_span "recover" (fun () ->
        let t_start = Obs.Clock.now_ns () in
        (* Replay must be deterministic: whatever fault schedule the
           process was running with does not apply to the past. *)
        Resilience.Fault.disable ();
        let ckpt =
          Durability.Checkpoint.read (Durability.Config.checkpoint_path d.config)
        in
        Option.iter (install_state mgr) ckpt;
        let checkpoint_seq, checkpoint_lsn =
          match ckpt with
          | Some st -> (st.Durability.State.seq, st.Durability.State.lsn)
          | None -> (0, 0)
        in
        (* The truncated log may no longer hold the records the
           checkpoint covers; the LSN counter must still move past
           them. *)
        Durability.Wal.ensure_lsn d.wal checkpoint_lsn;
        let tail =
          List.filter (fun (lsn, _) -> lsn > checkpoint_lsn) d.tail
        in
        List.iter (fun (_, record) -> replay_record mgr record) tail;
        let records_replayed = List.length tail in
        d.tail <- [];
        d.needs_recovery <- false;
        (* Re-checkpoint at the recovered state: it bounds the next
           recovery, covers views defined after the old checkpoint, and
           makes a second [recover] over this directory a no-op. *)
        write_checkpoint mgr d;
        let total_ns = Obs.Clock.now_ns () - t_start in
        Obs.Metrics.add "ivm_recovery_runs_total" ~labels:[] 1;
        Obs.Metrics.add "ivm_recovery_records_replayed_total" ~labels:[]
          records_replayed;
        Obs.Metrics.observe "ivm_recovery_ns" total_ns;
        let events =
          [
            {
              Obs.Provenance.phase = "recover";
              kind = "checkpoint";
              detail =
                Printf.sprintf "restored seq %d (lsn %d)" checkpoint_seq
                  checkpoint_lsn;
            };
            {
              Obs.Provenance.phase = "recover";
              kind = "replay";
              detail =
                Printf.sprintf "%d records replayed to seq %d"
                  records_replayed mgr.commit_seq;
            };
          ]
          @
          if Durability.Wal.torn_bytes d.wal > 0 then
            [
              {
                Obs.Provenance.phase = "recover";
                kind = "torn-tail";
                detail =
                  Printf.sprintf "%d torn bytes truncated"
                    (Durability.Wal.torn_bytes d.wal);
              };
            ]
          else []
        in
        Obs.Provenance.record
          {
            Obs.Provenance.seq = mgr.commit_seq;
            kind = "recover";
            outcome = "recovered";
            failing_phase = None;
            domains = mgr.domains;
            net = [];
            views = [];
            events;
            journal_bytes = None;
            total_ns;
          };
        {
          checkpoint_seq;
          checkpoint_lsn;
          records_replayed;
          last_seq = mgr.commit_seq;
          last_lsn = Durability.Wal.last_lsn d.wal;
          torn_bytes = Durability.Wal.torn_bytes d.wal;
        })
