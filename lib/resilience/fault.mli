(** Seed-deterministic probabilistic fault injection.

    A fault point is a named call site at an instrumented phase
    boundary of the maintenance pipeline ([screen], [eval], [row],
    [apply], [recompute], [task]).  When injection is active, the k-th
    execution of point [p] under seed [s] raises {!Injected} with
    probability [rate], decided by hashing [(s, p, k)] — so a given
    seed and rate produce the same fault sequence on every run, which
    is what lets the oracle fuzzer replay and shrink failing streams.

    Injection is off by default; {!point} then costs one atomic load
    and a branch.  Setting the [IVM_FAULT_RATE] environment variable
    to a float in (0, 1] activates it at program start with the
    default seed; programs activate it explicitly with {!configure}.
    Per-point occurrence counters are process-wide and reset by
    {!configure}, so replays must reconfigure before each run. *)

exception Injected of string
(** Raised by {!point}; the payload is the point name. *)

val configure : ?seed:int -> ?only:string list -> rate:float -> unit -> unit
(** Activate injection (resetting all occurrence counters).  [rate] is
    clamped to [0, 1]; a rate of 0 deactivates.  [only] restricts
    injection to the named points (default: all points).  Default seed
    1986. *)

val disable : unit -> unit
(** Deactivate injection.  Counters are left as-is; {!configure}
    resets them. *)

val active : unit -> bool
val rate : unit -> float

val point : string -> unit
(** Possibly raise {!Injected} at this fault point.  No-op when
    injection is inactive. *)

val injected : unit -> int
(** Number of faults raised since the last {!configure}. *)

val hash_unit : seed:int -> string -> int -> float
(** The deterministic hash used by {!point}, in [0, 1); exposed for
    {!Retry} jitter and for tests. *)
