let default_limit = 8

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let initial_dir () =
  match Sys.getenv_opt "IVM_FLIGHT_DIR" with
  | Some "" -> None
  | Some dir -> Some dir
  | None -> Some "."

let state_dir = ref (initial_dir ())
let remaining = ref default_limit
let written = ref 0
let last = ref None

let dir () = locked (fun () -> !state_dir)
let set_dir d = locked (fun () -> state_dir := d)
let set_limit n = locked (fun () -> remaining := n)
let dumps_written () = locked (fun () -> !written)
let last_dump () = locked (fun () -> !last)

(* One file per reason keeps crash loops bounded: the newest dump for a
   given failure mode overwrites the previous one. *)
let sanitize_reason reason =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
        | _ -> '-')
      reason
  in
  if mapped = "" then "unknown" else mapped

let dump ~reason =
  let target =
    locked (fun () ->
        match !state_dir with
        | Some dir when !remaining > 0 ->
          decr remaining;
          Some (Filename.concat dir
                  ("ivm-flight-" ^ sanitize_reason reason ^ ".json"))
        | _ -> None)
  in
  match target with
  | None -> None
  | Some path -> (
    match Obs.Json.to_file path (Obs.Provenance.dump_json ~reason) with
    | () ->
      locked (fun () ->
          incr written;
          last := Some path);
      Some path
    | exception Sys_error _ -> None)
