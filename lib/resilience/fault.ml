exception Injected of string

type config = { seed : int; rate : float; only : string list option }

let enabled = Atomic.make false
let injected_count = Atomic.make 0
let mutex = Mutex.create ()
let current = ref { seed = 1986; rate = 0.0; only = None }
let counters : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16

(* splitmix64 finalizer: a full-avalanche mix of one 64-bit word. *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let hash_unit ~seed name k =
  let h0 = Int64.of_int ((seed * 0x9e3779b9) lxor Hashtbl.hash name) in
  let h = mix64 (Int64.add (mix64 h0) (Int64.of_int k)) in
  (* Top 53 bits -> [0, 1). *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let configure ?(seed = 1986) ?only ~rate () =
  Mutex.protect mutex (fun () ->
      let rate = Float.max 0.0 (Float.min 1.0 rate) in
      current := { seed; rate; only };
      Hashtbl.reset counters;
      Atomic.set injected_count 0;
      Atomic.set enabled (rate > 0.0))

let disable () = Atomic.set enabled false
let active () = Atomic.get enabled
let rate () = (!current).rate

let counter_for name =
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add counters name c;
        c)

let point name =
  if Atomic.get enabled then begin
    let cfg = !current in
    let fires =
      (match cfg.only with
      | Some names -> List.mem name names
      | None -> true)
      &&
      let k = Atomic.fetch_and_add (counter_for name) 1 in
      hash_unit ~seed:cfg.seed name k < cfg.rate
    in
    if fires then begin
      Atomic.incr injected_count;
      Obs.Metrics.add "ivm_resilience_faults_injected_total"
        ~labels:[ ("point", name) ] 1;
      raise (Injected name)
    end
  end

let injected () = Atomic.get injected_count

(* [IVM_FAULT_RATE] activates injection at program start (library
   initializers run before [main]). *)
let () =
  match Sys.getenv_opt "IVM_FAULT_RATE" with
  | None -> ()
  | Some s -> (
    match float_of_string_opt s with
    | Some r when r > 0.0 -> configure ~rate:r ()
    | _ -> ())
