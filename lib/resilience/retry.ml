type policy = {
  attempts : int;
  backoff_ns : int;
  jitter : float;
  seed : int;
}

let default = { attempts = 3; backoff_ns = 100_000; jitter = 0.5; seed = 1986 }

type schedule = {
  rounds : int;
  base : int;
  multiplier : float;
  backoff_jitter : float;
  schedule_seed : int;
}

let default_schedule =
  { rounds = 3; base = 1; multiplier = 2.0; backoff_jitter = 0.0;
    schedule_seed = 1986 }

let heal_delay s ~failures =
  let k = max 1 failures in
  let base = float_of_int (max 1 s.base) *. (s.multiplier ** float_of_int (k - 1)) in
  (* Jitter in [-j, +j) of the base, deterministic in (seed, round) —
     the same hash family the fault injector and retry sleeps use, so a
     replayed stream reproduces the exact same eligibility sequence. *)
  let u = Fault.hash_unit ~seed:s.schedule_seed "heal-backoff" k in
  let delayed = base *. (1.0 +. (s.backoff_jitter *. ((2.0 *. u) -. 1.0))) in
  max 1 (int_of_float (Float.round delayed))

let sleep_ns policy ~attempt =
  let base = float_of_int policy.backoff_ns *. (2.0 ** float_of_int (attempt - 1)) in
  (* Jitter in [-j, +j) of the base, deterministic in (seed, attempt). *)
  let u = Fault.hash_unit ~seed:policy.seed "retry-jitter" attempt in
  let ns = base *. (1.0 +. (policy.jitter *. ((2.0 *. u) -. 1.0))) in
  if ns > 0.0 then Unix.sleepf (ns /. 1e9)

let run ?(label = "op") ?(on_retry = fun ~attempt:_ _ -> ()) policy f =
  let attempts = max 1 policy.attempts in
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      if attempt >= attempts then begin
        (* Ladder exhausted: leave a post-mortem of the decisions that
           led here before reporting the failure upwards. *)
        ignore (Flight.dump ~reason:("retry-exhausted-" ^ label));
        Error (e, bt)
      end
      else begin
        Obs.Metrics.add "ivm_resilience_retries_total"
          ~labels:[ ("op", label) ] 1;
        on_retry ~attempt e;
        sleep_ns policy ~attempt;
        go (attempt + 1)
      end
  in
  go 1
