(** Bounded retry with seed-deterministic jittered backoff.

    Used by the quarantine self-heal path: a quarantined view gets
    [attempts] differential maintenance tries (transient faults — the
    kind {!Fault} injects — usually clear on retry), then falls back
    to full recompute, the paper's always-correct strategy. *)

type policy = {
  attempts : int;  (** total tries per operation, clamped to >= 1 *)
  backoff_ns : int;
      (** sleep before retry k is [backoff_ns * 2^(k-1)], +/- jitter *)
  jitter : float;  (** jitter fraction in [0, 1] of the computed sleep *)
  seed : int;  (** jitter determinism, same role as {!Fault}'s seed *)
}

val default : policy
(** 3 attempts, 100 us base backoff, 0.5 jitter, seed 1986. *)

val run :
  ?label:string ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  policy ->
  (unit -> 'a) ->
  ('a, exn * Printexc.raw_backtrace) result
(** [run policy f] calls [f] up to [policy.attempts] times, sleeping
    between tries, and returns the first success or the {e last}
    failure.  Each retry increments [ivm_resilience_retries_total]
    (labelled with [label]) and calls [on_retry].  When the whole ladder
    exhausts, a flight-recorder dump ([retry-exhausted-<label>]) is
    written via {!Flight.dump} before the error is returned. *)
