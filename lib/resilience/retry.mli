(** Bounded retry with seed-deterministic jittered backoff.

    Used by the quarantine self-heal path: a quarantined view gets
    [attempts] differential maintenance tries (transient faults — the
    kind {!Fault} injects — usually clear on retry), then falls back
    to full recompute, the paper's always-correct strategy. *)

type policy = {
  attempts : int;  (** total tries per operation, clamped to >= 1 *)
  backoff_ns : int;
      (** sleep before retry k is [backoff_ns * 2^(k-1)], +/- jitter *)
  jitter : float;  (** jitter fraction in [0, 1] of the computed sleep *)
  seed : int;  (** jitter determinism, same role as {!Fault}'s seed *)
}

val default : policy
(** 3 attempts, 100 us base backoff, 0.5 jitter, seed 1986. *)

(** Self-heal ladder schedule: how many failed heal rounds a
    quarantined view gets before it is disabled, and how long (in
    commits) it waits between rounds.  Replaces the old fixed
    3-rounds-heal-every-commit cliff: round [k]'s wait is
    [base * multiplier^(k-1)] commits, jittered by [backoff_jitter]
    deterministically in [(schedule_seed, k)].  The manager surfaces
    the resulting eligibility point in each quarantine's
    [next_eligible] field (see {!Ivm.Manager.quarantine}). *)
type schedule = {
  rounds : int;  (** failed heal rounds before the view is disabled *)
  base : int;  (** commits to wait after the first failed round, >= 1 *)
  multiplier : float;  (** wait growth per further round *)
  backoff_jitter : float;  (** jitter fraction in [0, 1] of the wait *)
  schedule_seed : int;  (** jitter determinism *)
}

val default_schedule : schedule
(** 3 rounds, base 1, multiplier 2.0, no jitter, seed 1986 — after the
    first failure the view retries on the next commit (the historical
    behaviour), then waits 2 commits, then 4. *)

val heal_delay : schedule -> failures:int -> int
(** Commits to wait after the [failures]-th failed round, >= 1. *)

val run :
  ?label:string ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  policy ->
  (unit -> 'a) ->
  ('a, exn * Printexc.raw_backtrace) result
(** [run policy f] calls [f] up to [policy.attempts] times, sleeping
    between tries, and returns the first success or the {e last}
    failure.  Each retry increments [ivm_resilience_retries_total]
    (labelled with [label]) and calls [on_retry].  When the whole ladder
    exhausts, a flight-recorder dump ([retry-exhausted-<label>]) is
    written via {!Flight.dump} before the error is returned. *)
