open Relalg

type entry =
  | Update of { relation : Relation.t; tuple : Tuple.t; delta : int }
  | Restore of { install : Relation.t -> unit; saved : Relation.t }
  | Restore_fn of { undo : unit -> unit }

(* [entries] is newest-first, so rollback is a plain left-to-right
   iteration. *)
type t = { mutable entries : entry list; mutable count : int; mutable bytes : int }

let create () = { entries = []; count = 0; bytes = 0 }

let push j e size =
  j.entries <- e :: j.entries;
  j.count <- j.count + 1;
  j.bytes <- j.bytes + size

let update j r t delta =
  Relation.update r t delta;
  (* 3 words for the record, 1 per tuple field, 8 bytes each. *)
  push j (Update { relation = r; tuple = t; delta }) (24 + (8 * Tuple.arity t))

let record_restore j ~install ~saved =
  push j (Restore { install; saved }) (24 + (16 * Relation.cardinal saved))

let record_restore_fn j undo = push j (Restore_fn { undo }) 24

let append ~into sub =
  into.entries <- sub.entries @ into.entries;
  into.count <- into.count + sub.count;
  into.bytes <- into.bytes + sub.bytes;
  sub.entries <- [];
  sub.count <- 0;
  sub.bytes <- 0

let rollback j =
  let es = j.entries in
  j.entries <- [];
  j.count <- 0;
  j.bytes <- 0;
  List.iter
    (function
      | Update { relation; tuple; delta } -> Relation.update relation tuple (-delta)
      | Restore { install; saved } -> install saved
      | Restore_fn { undo } -> undo ())
    es

let entries j = j.count
let bytes j = j.bytes
