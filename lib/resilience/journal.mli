(** Undo log for transactional commit.

    The journal records every mutation the commit pipeline makes — a
    counter update on a base relation or a materialization, or the
    wholesale replacement of a materialization by a recompute — so
    that {!rollback} can restore the exact pre-commit state after a
    mid-pipeline failure.

    Mutations go {e through} the journal ({!update} performs the
    update and records its inverse; {!record_restore} records the
    inverse of a replacement the caller is about to perform), so a
    recorded entry always corresponds to a mutation that happened:
    [Relation.update] is atomic (it raises before mutating), which
    makes record-after-perform safe.

    A journal is single-domain.  Parallel view-maintenance tasks each
    write their own sub-journal; the coordinator merges them with
    {!append} after the barrier, which is sound because tasks mutate
    disjoint materializations. *)

type t

val create : unit -> t

val update : t -> Relalg.Relation.t -> Relalg.Tuple.t -> int -> unit
(** [update j r t delta] performs [Relation.update r t delta] and, if
    it succeeded, records the inverse.
    @raise Relalg.Relation.Negative_count as [Relation.update] does
    (nothing is recorded then). *)

val record_restore :
  t -> install:(Relalg.Relation.t -> unit) -> saved:Relalg.Relation.t -> unit
(** Record that rollback must [install saved].  Call {e before}
    performing the replacement being protected (e.g. a view
    recompute), with [saved] the relation being replaced. *)

val record_restore_fn : t -> (unit -> unit) -> unit
(** [record_restore_fn j undo] records an opaque undo action.  Because
    rollback runs newest-first, record it {e before} the mutations it
    repairs: their per-tuple inverses run first, then [undo] sees the
    restored state.  Used by aggregate views to rebuild derived
    per-group state from the rolled-back inner materialization. *)

val append : into:t -> t -> unit
(** [append ~into sub] moves [sub]'s entries into [into] as if they
    had been recorded there after everything [into] already holds.
    [sub] is emptied. *)

val rollback : t -> unit
(** Undo every recorded mutation, newest first, leaving the journal
    empty.  Sound to call at most once per recorded history. *)

val entries : t -> int
val bytes : t -> int
(** Approximate retained size of the undo log in bytes. *)
