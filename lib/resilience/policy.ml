type t = Abort | Quarantine | Unprotected

let name = function
  | Abort -> "abort"
  | Quarantine -> "quarantine"
  | Unprotected -> "unprotected"
