(** Failure-handling policy of the commit pipeline.

    The paper's Algorithm 5.1 runs view maintenance "as the last
    operation of a transaction" and never considers a half-applied
    commit.  Our pipeline is multi-phase (base deletes, parallel
    differential maintenance, base inserts, recomputes), so an
    exception in the middle would tear the database.  The policy says
    what the manager does instead. *)

type t =
  | Abort
      (** All-or-nothing: any failure rolls the whole commit back to
          the exact pre-commit state (base relations and
          materializations) and raises [Manager.Commit_failed]. *)
  | Quarantine
      (** Per-view isolation: a failing view is rolled back to its
          pre-commit materialization and marked quarantined; sibling
          views and the base update commit normally.  The quarantined
          view self-heals on its next access or commit.  Failures in
          the base-apply phases still abort the whole commit. *)
  | Unprotected
      (** Legacy behaviour: no undo journal, first exception re-raised
          mid-pipeline.  Exists as the happy-path overhead baseline
          for benchmarks; do not use where torn state matters. *)

val name : t -> string
