(** Flight-recorder dumps: persisting {!Obs.Provenance} post-mortems.

    When a commit fails, a view is quarantined, or a retry ladder
    exhausts its attempts, the maintenance pipeline calls {!dump} and the
    recent provenance ring is written to
    [<dir>/ivm-flight-<reason>.json] — one file per reason, newest dump
    wins, so crash loops do not fill the disk.

    The directory defaults to the [IVM_FLIGHT_DIR] environment variable,
    then the current directory; setting the variable to the empty string
    (or calling [set_dir None]) disables dumping, which the fuzz harness
    does — fault-injected fuzzing aborts thousands of commits on
    purpose, and each abort would otherwise rewrite the dump.

    Dumps are additionally throttled to {!default_limit} per process (the
    first failures are the interesting ones in a crash loop); tests and
    long-lived servers can raise it with {!set_limit}. *)

val default_limit : int

(** Current dump directory; [None] when dumping is disabled. *)
val dir : unit -> string option

val set_dir : string option -> unit

(** Remaining dumps this process may write (counts down from the
    limit). *)
val set_limit : int -> unit

(** Dumps actually written since process start. *)
val dumps_written : unit -> int

(** Path of the most recent dump, if any. *)
val last_dump : unit -> string option

(** [dump ~reason] writes the flight-recorder ring to disk and returns
    the path, or [None] when dumping is disabled, throttled, or the
    write failed (a post-mortem must never take down the pipeline that
    is trying to fail cleanly). *)
val dump : reason:string -> string option
