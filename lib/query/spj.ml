open Relalg
module Formula = Condition.Formula

type source = {
  relation : string;
  alias : string;
}

type t = {
  sources : source list;
  condition : Formula.t;
  condition_dnf : Formula.dnf;
  projection : (Attr.t * Attr.t) list;
}

exception Compile_error of string

let compile_error fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

(* Intermediate result while flattening: the visible output attributes and
   the qualified attribute each one denotes. *)
type partial = {
  srcs : source list; (* reversed *)
  conds : Formula.t list;
  binding : (Attr.t * Attr.t) list; (* output name -> qualified attr *)
}

let fresh_alias used name =
  let rec pick i =
    let candidate = if i = 1 then name else Printf.sprintf "%s%d" name i in
    if Hashtbl.mem used candidate then pick (i + 1)
    else begin
      Hashtbl.replace used candidate ();
      candidate
    end
  in
  pick 1

let rewrite_formula binding f =
  let subst v =
    match List.assoc_opt v binding with
    | Some q -> q
    | None -> compile_error "condition refers to unknown attribute %S" v
  in
  let rewrite_operand = function
    | Formula.O_var v -> Formula.O_var (subst v)
    | Formula.O_const _ as c -> c
  in
  let rec go = function
    | Formula.True -> Formula.True
    | Formula.False -> Formula.False
    | Formula.Atom a ->
      Formula.Atom
        {
          a with
          Formula.left = rewrite_operand a.Formula.left;
          right = rewrite_operand a.Formula.right;
        }
    | Formula.And (f, g) -> Formula.And (go f, go g)
    | Formula.Or (f, g) -> Formula.Or (go f, go g)
    | Formula.Not f -> Formula.Not (go f)
  in
  go f

let rec flatten lookup used = function
  | Expr.Base name ->
    let schema =
      match lookup name with
      | schema -> schema
      | exception (Not_found | Failure _ | Relalg.Database.Unknown_relation _) ->
        compile_error "unknown base relation %S" name
    in
    let alias = fresh_alias used name in
    {
      srcs = [ { relation = name; alias } ];
      conds = [];
      binding =
        List.map (fun n -> (n, Attr.qualify ~alias n)) (Schema.names schema);
    }
  | Expr.Select (f, e) ->
    let p = flatten lookup used e in
    { p with conds = rewrite_formula p.binding f :: p.conds }
  | Expr.Project (attrs, e) ->
    let p = flatten lookup used e in
    let binding =
      List.map
        (fun a ->
          match List.assoc_opt a p.binding with
          | Some q -> (a, q)
          | None -> compile_error "projection on unknown attribute %S" a)
        attrs
    in
    { p with binding }
  | Expr.Rename (mapping, e) ->
    let p = flatten lookup used e in
    let renamed out =
      match List.assoc_opt out mapping with
      | Some fresh -> fresh
      | None -> out
    in
    let binding = List.map (fun (out, q) -> (renamed out, q)) p.binding in
    (* Renaming must not merge two visible attributes. *)
    List.iter
      (fun (out, _) ->
        if List.length (List.filter (fun (o, _) -> Attr.equal o out) binding) > 1
        then compile_error "rename collides on attribute %S" out)
      binding;
    { p with binding }
  | Expr.Natural_join (e1, e2) ->
    let p1 = flatten lookup used e1 in
    let p2 = flatten lookup used e2 in
    let shared =
      List.filter (fun (n, _) -> List.mem_assoc n p2.binding) p1.binding
    in
    let join_conds =
      List.map
        (fun (n, q1) ->
          let q2 = List.assoc n p2.binding in
          Formula.Atom (Formula.atom (Formula.O_var q1) Formula.Eq (Formula.O_var q2)))
        shared
    in
    let binding2 =
      List.filter (fun (n, _) -> not (List.mem_assoc n p1.binding)) p2.binding
    in
    {
      srcs = p2.srcs @ p1.srcs;
      conds = join_conds @ p1.conds @ p2.conds;
      binding = p1.binding @ binding2;
    }
  | Expr.Product (e1, e2) ->
    let p1 = flatten lookup used e1 in
    let p2 = flatten lookup used e2 in
    List.iter
      (fun (n, _) ->
        if List.mem_assoc n p2.binding then
          compile_error "product operands share attribute %S" n)
      p1.binding;
    {
      srcs = p2.srcs @ p1.srcs;
      conds = p1.conds @ p2.conds;
      binding = p1.binding @ p2.binding;
    }
  | Expr.Group_by _ ->
    (* The canonical form pi(sigma(x)) has no aggregation; callers that
       support GROUP BY split it off with [Expr.aggregate] and compile
       the inner expression. *)
    compile_error "GROUP BY must be the outermost operator"

let compile lookup e =
  let used = Hashtbl.create 8 in
  let p = flatten lookup used e in
  let condition = Formula.conj (List.rev p.conds) in
  let condition_dnf =
    try Formula.to_dnf condition
    with Formula.Dnf_too_large ->
      compile_error "view condition is too large to normalize"
  in
  {
    sources = List.rev p.srcs;
    condition;
    condition_dnf;
    projection = p.binding;
  }

let qualified_schema lookup source =
  Schema.qualify ~alias:source.alias (lookup source.relation)

let qualified_ty lookup spj attr =
  match Attr.alias_of attr with
  | None -> Value.Int_ty
  | Some alias -> (
    match List.find_opt (fun s -> String.equal s.alias alias) spj.sources with
    | None -> Value.Int_ty
    | Some source -> (
      let schema = lookup source.relation in
      match Schema.position_opt schema (Attr.base attr) with
      | Some i -> Schema.ty_at schema i
      | None -> Value.Int_ty))

let output_schema lookup spj =
  Schema.make
    (List.map
       (fun (out, q) -> (out, qualified_ty lookup spj q))
       spj.projection)

let typing lookup spj : Condition.Satisfiability.typing =
 fun attr -> qualified_ty lookup spj attr

let source_with_alias spj alias =
  match List.find_opt (fun s -> String.equal s.alias alias) spj.sources with
  | Some s -> s
  | None -> raise Not_found

let sources_of_relation spj name =
  List.filter (fun s -> String.equal s.relation name) spj.sources

let eval lookup db spj =
  let sources =
    List.map
      (fun s ->
        let qualified = qualified_schema lookup s in
        (s.alias, Relation.reschema (Database.find db s.relation) qualified))
      spj.sources
  in
  Planner.run ~sources ~condition_dnf:spj.condition_dnf
    ~projection:spj.projection ()

let pp ppf spj =
  Format.fprintf ppf "@[<v>pi[%a]@,sigma[%a]@,(%a)@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (out, q) ->
         if Attr.equal out q then Attr.pp ppf out
         else Format.fprintf ppf "%a:=%a" Attr.pp out Attr.pp q))
    spj.projection Formula.pp spj.condition
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " x ")
       (fun ppf s ->
         if String.equal s.relation s.alias then
           Format.pp_print_string ppf s.relation
         else Format.fprintf ppf "%s as %s" s.relation s.alias))
    spj.sources
