(** Candidate keys and the key-preservation analysis.

    Section 5.2 of the paper offers two ways to make project views
    maintainable under deletions: multiplicity counters (alternative 1,
    which this library implements as the general mechanism) or including
    a key of the underlying relation in the projection (alternative 2),
    which makes every view tuple uniquely identified so deletions map
    one-to-one.

    This module provides the static analysis behind alternative 2: a view
    is {e duplicate-free} when the projection functionally determines a
    candidate key of every source, in which case every multiplicity
    counter is provably 1 and key-based maintenance would suffice. *)

open Relalg

(** Candidate keys: [(relation name, key attributes)].  A relation may
    appear once; multi-attribute keys are supported. *)
type t = (string * Attr.t list) list

(** [projection_preserves_keys ~keys spj] holds when, for every source,
    each (alias-qualified) key attribute is determined by the view output:
    its equality class contains a projected attribute or is pinned to a
    constant by the condition.  Views with disjunctive conditions are
    conservatively rejected.

    Soundness: when this returns [true], the materialized view is a set —
    every counter equals 1 in every reachable state (tested by property
    P-keys in the test suite). *)
val projection_preserves_keys : keys:t -> Spj.t -> bool

(** [undetermined_sources ~keys spj] lists the aliases of sources whose
    declared key the projection does {e not} determine — including sources
    with no declared key at all.  Empty exactly when
    {!projection_preserves_keys} holds.  Views with disjunctive conditions
    conservatively report every source.  The static analyzer uses this to
    name the sources that force multiplicity counters (Example 5.1). *)
val undetermined_sources : keys:t -> Spj.t -> string list
