open Relalg

let select_relation formula r =
  let schema = Relation.schema r in
  (* Resolve variable positions once, not per tuple. *)
  let positions = Hashtbl.create 8 in
  List.iter
    (fun v ->
      match Schema.position_opt schema v with
      | Some i -> Hashtbl.replace positions v i
      | None ->
        invalid_arg
          (Printf.sprintf "Eval.select_relation: unknown attribute %S" v))
    (Condition.Formula.vars formula);
  let current = ref [||] in
  let lookup v = Tuple.get !current (Hashtbl.find positions v) in
  Ops.select
    (fun t ->
      current := t;
      Condition.Formula.eval lookup formula)
    r

let rec eval db = function
  | Expr.Base name -> Database.find db name
  | Expr.Select (f, e) -> select_relation f (eval db e)
  | Expr.Project (attrs, e) -> Ops.project (eval db e) attrs
  | Expr.Rename (mapping, e) ->
    let renamed a =
      match List.assoc_opt a mapping with
      | Some fresh -> fresh
      | None -> a
    in
    Ops.rename renamed (eval db e)
  | Expr.Natural_join (a, b) -> Ops.natural_join (eval db a) (eval db b)
  | Expr.Product (a, b) -> Ops.product (eval db a) (eval db b)
  | Expr.Group_by (agg, e) -> Aggregate.eval agg (eval db e)
