(** GROUP BY aggregate specifications.

    An aggregate query groups the rows of an inner SPJ expression by a
    list of key attributes and folds each group through ring-valued
    aggregate functions ([Relalg.Ring]): COUNT and SUM are the int ring,
    AVG is the product ring (sum, count) rendered as integer division at
    the edge, MIN/MAX are idempotent monoids without inverses (their
    incremental maintenance rescans a group when the extremum's support
    drains).  Groups with no members produce no row — even with an empty
    key list — so the incremental "group disappears at zero members"
    rule and the naive {!eval} fold agree. *)

open Relalg

type func =
  | Count
  | Sum of Attr.t
  | Avg of Attr.t
  | Min of Attr.t
  | Max of Attr.t

type target = {
  func : func;
  output : Attr.t;  (** name of the aggregate column in the output *)
}

type t = {
  keys : Attr.t list;  (** group-by keys, in output order *)
  targets : target list;
}

(** Source attribute the function reads, [None] for COUNT. *)
val source : func -> Attr.t option

(** Surface syntax name: COUNT, SUM, AVG, MIN, MAX. *)
val func_name : func -> string

(** Name of the payload ring the function folds in. *)
val ring_name : func -> string

(** Whether the function's ring has additive inverses; [false] exactly
    for MIN/MAX, whose deletions may force a per-group rescan. *)
val invertible : func -> bool

(** Output schema: keys (with their inner types) followed by one column
    per target.
    @raise Invalid_argument when a key is missing from [inner]. *)
val output_schema : t -> inner:Schema.t -> Schema.t

(** Naive reference fold: groups the counted inner relation (a tuple
    with multiplicity [c] contributes [c] members) and renders one
    output tuple per non-empty group, every output multiplicity 1.
    Shared by [Query.Eval] and the oracle reference engine; the
    incremental engine in [lib/core] never calls it outside rescans. *)
val eval : t -> Relation.t -> Relation.t

val pp_target : Format.formatter -> target -> unit
val pp : Format.formatter -> t -> unit
