open Relalg
module Formula = Condition.Formula

type t = (string * Attr.t list) list

let rec find parent a =
  match Hashtbl.find_opt parent a with
  | None -> a
  | Some p ->
    let root = find parent p in
    if not (Attr.equal root p) then Hashtbl.replace parent a root;
    root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if not (Attr.equal ra rb) then Hashtbl.replace parent ra rb

let undetermined_sources ~keys (spj : Spj.t) =
  match spj.Spj.condition_dnf with
  | [ conj ] ->
    let parent = Hashtbl.create 16 in
    let pinned = Hashtbl.create 8 in
    List.iter
      (fun (a : Formula.atom) ->
        match a.Formula.left, a.Formula.cmp, a.Formula.right, a.Formula.shift
        with
        | Formula.O_var x, Formula.Eq, Formula.O_var y, 0 -> union parent x y
        | Formula.O_var x, Formula.Eq, Formula.O_const _, _
        | Formula.O_const _, Formula.Eq, Formula.O_var x, _ ->
          Hashtbl.replace pinned x ()
        | _ -> ())
      conj;
    let projected_classes =
      List.map (fun (_, q) -> find parent q) spj.Spj.projection
    in
    let pinned_classes =
      Hashtbl.fold (fun a () acc -> find parent a :: acc) pinned []
    in
    let determined q =
      let cls = find parent q in
      List.exists (Attr.equal cls) projected_classes
      || List.exists (Attr.equal cls) pinned_classes
    in
    List.filter_map
      (fun (source : Spj.source) ->
        let preserved =
          match List.assoc_opt source.Spj.relation keys with
          | None -> false
          | Some key ->
            key <> []
            && List.for_all
                 (fun a -> determined (Attr.qualify ~alias:source.Spj.alias a))
                 key
        in
        if preserved then None else Some source.Spj.alias)
      spj.Spj.sources
  | _ -> List.map (fun (s : Spj.source) -> s.Spj.alias) spj.Spj.sources

let projection_preserves_keys ~keys spj = undetermined_sources ~keys spj = []
