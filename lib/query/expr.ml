open Relalg

type t =
  | Base of string
  | Select of Condition.Formula.t * t
  | Project of Attr.t list * t
  | Rename of (Attr.t * Attr.t) list * t
  | Natural_join of t * t
  | Product of t * t
  | Group_by of Aggregate.t * t

let base name = Base name
let select f e = Select (f, e)
let project attrs e = Project (attrs, e)
let rename mapping e = Rename (mapping, e)
let join a b = Natural_join (a, b)
let product a b = Product (a, b)
let group_by ~keys targets e = Group_by ({ Aggregate.keys; targets }, e)

let join_all = function
  | [] -> invalid_arg "Expr.join_all: empty list"
  | e :: rest -> List.fold_left join e rest

let base_names e =
  let rec collect acc = function
    | Base name -> name :: acc
    | Select (_, e) | Project (_, e) | Rename (_, e) | Group_by (_, e) ->
      collect acc e
    | Natural_join (a, b) | Product (a, b) -> collect (collect acc a) b
  in
  List.rev (collect [] e)

(* Aggregation is only legal as the outermost operator; [Spj.flatten]
   rejects nested occurrences.  This split is what the engine consumes:
   the inner SPJ expression is materialized and maintained by the
   existing machinery, the spec is folded on top. *)
let aggregate = function
  | Group_by (agg, inner) -> Some (agg, inner)
  | Base _ | Select _ | Project _ | Rename _ | Natural_join _ | Product _ ->
    None

let rec schema_of lookup = function
  | Base name -> lookup name
  | Select (_, e) -> schema_of lookup e
  | Project (attrs, e) -> fst (Schema.project (schema_of lookup e) attrs)
  | Rename (mapping, e) ->
    let renamed a =
      match List.assoc_opt a mapping with
      | Some fresh -> fresh
      | None -> a
    in
    Schema.rename renamed (schema_of lookup e)
  | Natural_join (a, b) ->
    let sa = schema_of lookup a and sb = schema_of lookup b in
    let extra =
      List.filter_map
        (fun (n, ty) -> if Schema.mem sa n then None else Some (n, ty))
        (Schema.attrs sb)
    in
    Schema.make (Schema.attrs sa @ extra)
  | Product (a, b) -> Schema.concat (schema_of lookup a) (schema_of lookup b)
  | Group_by (agg, e) -> Aggregate.output_schema agg ~inner:(schema_of lookup e)

let rec pp ppf = function
  | Base name -> Format.pp_print_string ppf name
  | Select (f, e) ->
    Format.fprintf ppf "@[sigma[%a]@,(%a)@]" Condition.Formula.pp f pp e
  | Project (attrs, e) ->
    Format.fprintf ppf "@[pi[%a]@,(%a)@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Attr.pp)
      attrs pp e
  | Rename (mapping, e) ->
    Format.fprintf ppf "@[rho[%a]@,(%a)@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf (old_name, fresh) ->
           Format.fprintf ppf "%a->%a" Attr.pp old_name Attr.pp fresh))
      mapping pp e
  | Natural_join (a, b) -> Format.fprintf ppf "(%a |X| %a)" pp a pp b
  | Product (a, b) -> Format.fprintf ppf "(%a X %a)" pp a pp b
  | Group_by (agg, e) -> Format.fprintf ppf "@[%a@,(%a)@]" Aggregate.pp agg pp e
