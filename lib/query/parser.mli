(** A small SQL-like surface syntax for view definitions.

    {v
    SELECT A, D
    FROM R, S
    WHERE A < 10 AND C > 5 AND B = C
    v}

    - [FROM] items are combined with natural join (shared attribute names
      join; disjoint schemas give a product), matching {!Expr.join_all};
    - [SELECT *] keeps every attribute;
    - [WHERE] supports [AND]/[OR]/[NOT], parentheses, the comparators
      [=, <>, <, <=, >, >=], integer and ['single-quoted'] string
      literals, and the paper's shifted form [A < B + 3] / [A >= B - 2];
    - [FROM R AS x] renames every attribute of [R] to [x_<attr>], giving
      self-joins distinct roles;
    - [SELECT B, COUNT( * ) AS n, SUM(A) AS total ... GROUP BY B] builds
      a {!Expr.Group_by} over the joined/filtered input.  Aggregate
      functions are [COUNT( * )] (or [COUNT(attr)] — no nulls, so they
      agree), [SUM], [AVG], [MIN], [MAX]; [AS] is optional (default
      output names [count], [sum_<attr>], ...); plain select columns
      must be exactly the [GROUP BY] keys, in order.

    The grammar compiles to {!Expr.t}; everything downstream (compilation
    to canonical SPJ form, maintenance, screening) is unchanged. *)

exception Parse_error of string
(** Raised with a position-qualified message on malformed input. *)

(** [view text] parses a full [SELECT ... FROM ... [WHERE ...]] statement.
    Needs the base-relation schemas to expand [*] and qualify aliases. *)
val view : lookup:(string -> Relalg.Schema.t) -> string -> Expr.t

(** [condition text] parses a bare boolean expression. *)
val condition : string -> Condition.Formula.t
