open Relalg

type func =
  | Count
  | Sum of Attr.t
  | Avg of Attr.t
  | Min of Attr.t
  | Max of Attr.t

type target = {
  func : func;
  output : Attr.t;
}

type t = {
  keys : Attr.t list;
  targets : target list;
}

let source = function
  | Count -> None
  | Sum a | Avg a | Min a | Max a -> Some a

let func_name = function
  | Count -> "COUNT"
  | Sum _ -> "SUM"
  | Avg _ -> "AVG"
  | Min _ -> "MIN"
  | Max _ -> "MAX"

let ring_name = function
  | Count -> Ring.Count.name
  | Sum _ -> Ring.Sum.name
  | Avg _ -> Ring.Avg.name
  | Min _ -> Ring.Min.name
  | Max _ -> Ring.Max.name

(* MIN/MAX live in idempotent monoids without additive inverses, so
   deletions of the current extremum cannot be maintained purely from
   the delta — the maintenance layer rescans the group. *)
let invertible = function
  | Count | Sum _ | Avg _ -> true
  | Min _ | Max _ -> false

let output_ty ~inner target =
  match target.func with
  | Count -> Value.Int_ty
  | Sum a | Avg a -> (
    match Schema.position_opt inner a with
    | Some i -> Schema.ty_at inner i
    | None -> Value.Int_ty)
  | Min a | Max a -> (
    match Schema.position_opt inner a with
    | Some i -> Schema.ty_at inner i
    | None -> Value.Int_ty)

let output_schema agg ~inner =
  let key_attrs =
    List.map
      (fun k ->
        match Schema.position_opt inner k with
        | Some i -> (k, Schema.ty_at inner i)
        | None ->
          invalid_arg
            (Printf.sprintf "Aggregate.output_schema: unknown group key %S" k))
      agg.keys
  in
  Schema.make
    (key_attrs
    @ List.map (fun tgt -> (tgt.output, output_ty ~inner tgt)) agg.targets)

(* Naive reference fold over a counted inner relation: a tuple with
   multiplicity c contributes c members to its group.  No group for
   empty input — even with [keys = []] the aggregate of nothing is no
   rows, which keeps the incremental engine's "group disappears when its
   member count drains to zero" rule and this fold in agreement. *)
let eval agg inner =
  let inner_schema = Relation.schema inner in
  let key_positions =
    List.map
      (fun k ->
        match Schema.position_opt inner_schema k with
        | Some i -> i
        | None ->
          invalid_arg (Printf.sprintf "Aggregate.eval: unknown group key %S" k))
      agg.keys
  in
  let source_position tgt =
    match source tgt.func with
    | None -> -1
    | Some a -> (
      match Schema.position_opt inner_schema a with
      | Some i -> i
      | None ->
        invalid_arg
          (Printf.sprintf "Aggregate.eval: unknown aggregate source %S" a))
  in
  let positions = List.map source_position agg.targets in
  (* Per-group accumulators: count, per-target sum, per-target extremum. *)
  let groups : (Value.t list, int * int array * Value.t option array) Hashtbl.t =
    Hashtbl.create 16
  in
  let n = List.length agg.targets in
  Relation.iter
    (fun tuple c ->
      let key = List.map (fun i -> Tuple.get tuple i) key_positions in
      let members, sums, exts =
        match Hashtbl.find_opt groups key with
        | Some acc -> acc
        | None ->
          let acc = (0, Array.make n 0, Array.make n None) in
          Hashtbl.replace groups key acc;
          acc
      in
      List.iteri
        (fun j (tgt, pos) ->
          match tgt.func with
          | Count -> ()
          | Sum _ | Avg _ ->
            sums.(j) <- sums.(j) + (c * Value.int (Tuple.get tuple pos))
          | Min _ ->
            let v = Tuple.get tuple pos in
            exts.(j) <-
              (match exts.(j) with
              | None -> Some v
              | Some e -> Some (if Value.compare v e < 0 then v else e))
          | Max _ ->
            let v = Tuple.get tuple pos in
            exts.(j) <-
              (match exts.(j) with
              | None -> Some v
              | Some e -> Some (if Value.compare v e > 0 then v else e)))
        (List.combine agg.targets positions);
      Hashtbl.replace groups key (members + c, sums, exts))
    inner;
  let out = Relation.create (output_schema agg ~inner:inner_schema) in
  Hashtbl.iter
    (fun key (members, sums, exts) ->
      let rendered =
        List.mapi
          (fun j tgt ->
            match tgt.func with
            | Count -> Value.Int members
            | Sum _ -> Value.Int sums.(j)
            | Avg _ -> Value.Int (sums.(j) / members)
            | Min _ | Max _ -> Option.get exts.(j))
          agg.targets
      in
      Relation.add out (Array.of_list (key @ rendered)))
    groups;
  out

let pp_target ppf tgt =
  (match source tgt.func with
  | None -> Format.fprintf ppf "%s(*)" (func_name tgt.func)
  | Some a -> Format.fprintf ppf "%s(%a)" (func_name tgt.func) Attr.pp a);
  Format.fprintf ppf " AS %a" Attr.pp tgt.output

let pp ppf agg =
  Format.fprintf ppf "@[gamma[%a; %a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Attr.pp)
    agg.keys
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_target)
    agg.targets
