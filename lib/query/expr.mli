(** Relational-algebra expressions over named base relations.

    The paper's view class is SPJ: expressions combining selections,
    projections and joins (Section 3).  [Natural_join] joins on all shared
    attribute names; [Product] requires disjoint schemas.  Expressions are
    compiled to the canonical form pi_X(sigma_C(R1 x ... x Rp)) by
    {!module:Spj}. *)

open Relalg

type t =
  | Base of string
  | Select of Condition.Formula.t * t
  | Project of Attr.t list * t
  | Rename of (Attr.t * Attr.t) list * t
      (** [(old name, new name)] pairs; unlisted attributes keep their
          names.  Needed for self-joins where both occurrences play
          different roles. *)
  | Natural_join of t * t
  | Product of t * t
  | Group_by of Aggregate.t * t
      (** GROUP BY aggregation over an inner SPJ expression.  Only legal
          as the outermost operator ({!module:Spj} rejects nested
          occurrences); split off with {!aggregate}. *)

(** {1 Constructors} *)

val base : string -> t
val select : Condition.Formula.t -> t -> t
val project : Attr.t list -> t -> t

(** [rename [(old, new); ...] e]; see {!Rename}. *)
val rename : (Attr.t * Attr.t) list -> t -> t

val join : t -> t -> t
val product : t -> t -> t

(** [group_by ~keys targets e] is [Group_by ({keys; targets}, e)]. *)
val group_by : keys:Attr.t list -> Aggregate.target list -> t -> t

(** N-ary natural join, left-associated.
    @raise Invalid_argument on the empty list. *)
val join_all : t list -> t

(** Names of the base relations, in occurrence order with duplicates. *)
val base_names : t -> string list

(** [aggregate e] is [Some (spec, inner)] when [e] is a top-level
    {!Group_by}, [None] otherwise. *)
val aggregate : t -> (Aggregate.t * t) option

(** [schema_of lookup e] infers the output schema, where [lookup] gives the
    schema of each base relation.
    @raise Invalid_argument when a product has overlapping schemas or a
    projection mentions a missing attribute. *)
val schema_of : (string -> Schema.t) -> t -> Schema.t

val pp : Format.formatter -> t -> unit
