(** Acyclic join detection and semijoin-reduced evaluation.

    Shmueli and Itai [SI84] — discussed in the paper's related work —
    maintain views over {e acyclic} database schemes with semijoin-based
    auxiliary structures.  This module provides that machinery as an
    alternative evaluation strategy: the query's equality hypergraph is
    tested for acyclicity with the GYO ear-removal reduction, and acyclic
    queries are evaluated with Yannakakis' algorithm — a full semijoin
    reduction along the join tree followed by joins in tree order, which
    bounds every intermediate result by the final output size.

    On adversarial inputs where every pairwise join explodes but the full
    join is small, this beats the greedy binary-join planner by orders of
    magnitude (experiment E14); on typical inputs the extra semijoin
    passes make it slightly slower. *)

open Relalg

(** A rooted join tree over the view's source aliases. *)
type tree = {
  alias : string;
  children : tree list;
}

(** [join_tree ~lookup spj] builds a join tree via GYO reduction.  Returns
    [None] when the condition is not a single conjunction, or when the
    equality hypergraph is cyclic. *)
val join_tree : lookup:(string -> Schema.t) -> Spj.t -> tree option

(** [true] iff the view's equality hypergraph is acyclic. *)
val acyclic : lookup:(string -> Schema.t) -> Spj.t -> bool

(** Connected components of the source-connection graph: two sources are
    connected when some atom of the condition (in any disjunct) mentions
    attributes of both.  More than one component means the view contains a
    hidden Cartesian product of the components — a structural smell the
    static analyzer flags.  Each component lists aliases in source order;
    components are ordered by their smallest representative. *)
val components : lookup:(string -> Schema.t) -> Spj.t -> string list list

(** [eval ~lookup ~sources spj] evaluates the SPJ with Yannakakis'
    algorithm when a join tree exists, and falls back to
    {!Planner.run} otherwise.  [sources] are [(alias, relation)] pairs
    with qualified schemas, as for the planner. *)
val eval :
  lookup:(string -> Schema.t) ->
  sources:(string * Relation.t) list ->
  Spj.t ->
  Relation.t

val pp_tree : Format.formatter -> tree -> unit
