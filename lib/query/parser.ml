open Relalg
module Formula = Condition.Formula

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | T_ident of string
  | T_int of int
  | T_string of string
  | T_keyword of string (* SELECT FROM WHERE AND OR NOT AS JOIN GROUP BY *)
  | T_symbol of string (* , ( ) * + - = <> < <= > >= *)
  | T_end

let keyword_list =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "AS"; "JOIN"; "GROUP"; "BY" ]

let pp_token = function
  | T_ident s -> Printf.sprintf "identifier %S" s
  | T_int n -> Printf.sprintf "integer %d" n
  | T_string s -> Printf.sprintf "string %S" s
  | T_keyword k -> k
  | T_symbol s -> Printf.sprintf "%S" s
  | T_end -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let emit t position = tokens := (t, position) :: !tokens in
  let rec go i =
    if i >= n then emit T_end i
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | ',' | '(' | ')' | '*' | '+' | '-' | '=' ->
        emit (T_symbol (String.make 1 text.[i])) i;
        go (i + 1)
      | '<' when i + 1 < n && text.[i + 1] = '=' ->
        emit (T_symbol "<=") i;
        go (i + 2)
      | '<' when i + 1 < n && text.[i + 1] = '>' ->
        emit (T_symbol "<>") i;
        go (i + 2)
      | '<' ->
        emit (T_symbol "<") i;
        go (i + 1)
      | '>' when i + 1 < n && text.[i + 1] = '=' ->
        emit (T_symbol ">=") i;
        go (i + 2)
      | '>' ->
        emit (T_symbol ">") i;
        go (i + 1)
      | '!' when i + 1 < n && text.[i + 1] = '=' ->
        emit (T_symbol "<>") i;
        go (i + 2)
      | '\'' ->
        (* single-quoted string, '' escapes a quote *)
        let buffer = Buffer.create 16 in
        let rec scan j =
          if j >= n then parse_error "position %d: unterminated string" i
          else if text.[j] = '\'' then
            if j + 1 < n && text.[j + 1] = '\'' then begin
              Buffer.add_char buffer '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buffer text.[j];
            scan (j + 1)
          end
        in
        let next = scan (i + 1) in
        emit (T_string (Buffer.contents buffer)) i;
        go next
      | c when c >= '0' && c <= '9' ->
        let j = ref i in
        while !j < n && text.[!j] >= '0' && text.[!j] <= '9' do
          incr j
        done;
        emit (T_int (int_of_string (String.sub text i (!j - i)))) i;
        go !j
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char text.[!j] do
          incr j
        done;
        let word = String.sub text i (!j - i) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keyword_list then emit (T_keyword upper) i
        else emit (T_ident word) i;
        go !j
      | c -> parse_error "position %d: unexpected character %C" i c
  in
  go 0;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Token stream                                                        *)
(* ------------------------------------------------------------------ *)

type stream = { mutable tokens : (token * int) list }

let peek stream =
  match stream.tokens with
  | (t, _) :: _ -> t
  | [] -> T_end

let peek2 stream =
  match stream.tokens with
  | _ :: (t, _) :: _ -> t
  | _ -> T_end

let position stream =
  match stream.tokens with
  | (_, p) :: _ -> p
  | [] -> -1

let advance stream =
  match stream.tokens with
  | _ :: rest -> stream.tokens <- rest
  | [] -> ()

let expect stream token =
  if peek stream = token then advance stream
  else
    parse_error "position %d: expected %s, found %s" (position stream)
      (pp_token token)
      (pp_token (peek stream))

let accept stream token =
  if peek stream = token then begin
    advance stream;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Condition grammar                                                   *)
(*   disjunction := conjunction (OR conjunction)*                      *)
(*   conjunction := negation (AND negation)*                           *)
(*   negation    := NOT negation | '(' disjunction ')' | comparison    *)
(*   comparison  := operand cmp operand [('+'|'-') INT]                *)
(*   operand     := IDENT | INT | STRING                               *)
(* ------------------------------------------------------------------ *)

let parse_operand stream =
  match peek stream with
  | T_ident name ->
    advance stream;
    Formula.O_var name
  | T_int x ->
    advance stream;
    Formula.O_const (Value.Int x)
  | T_string s ->
    advance stream;
    Formula.O_const (Value.Str s)
  | other ->
    parse_error "position %d: expected an attribute or literal, found %s"
      (position stream) (pp_token other)

let comparator_of = function
  | "=" -> Some Formula.Eq
  | "<>" -> Some Formula.Neq
  | "<" -> Some Formula.Lt
  | "<=" -> Some Formula.Leq
  | ">" -> Some Formula.Gt
  | ">=" -> Some Formula.Geq
  | _ -> None

let parse_comparison stream =
  let left = parse_operand stream in
  let cmp =
    match peek stream with
    | T_symbol s -> (
      match comparator_of s with
      | Some cmp ->
        advance stream;
        cmp
      | None ->
        parse_error "position %d: expected a comparator, found %S"
          (position stream) s)
    | other ->
      parse_error "position %d: expected a comparator, found %s"
        (position stream) (pp_token other)
  in
  let right = parse_operand stream in
  let shift =
    match peek stream with
    | T_symbol "+" ->
      advance stream;
      (match peek stream with
      | T_int x ->
        advance stream;
        x
      | other ->
        parse_error "position %d: expected an integer after '+', found %s"
          (position stream) (pp_token other))
    | T_symbol "-" ->
      advance stream;
      (match peek stream with
      | T_int x ->
        advance stream;
        -x
      | other ->
        parse_error "position %d: expected an integer after '-', found %s"
          (position stream) (pp_token other))
    | _ -> 0
  in
  Formula.Atom (Formula.atom left cmp ~shift right)

let rec parse_disjunction stream =
  let first = parse_conjunction stream in
  if accept stream (T_keyword "OR") then
    Formula.Or (first, parse_disjunction stream)
  else first

and parse_conjunction stream =
  let first = parse_negation stream in
  if accept stream (T_keyword "AND") then
    Formula.And (first, parse_conjunction stream)
  else first

and parse_negation stream =
  if accept stream (T_keyword "NOT") then Formula.Not (parse_negation stream)
  else if accept stream (T_symbol "(") then begin
    let inner = parse_disjunction stream in
    expect stream (T_symbol ")");
    inner
  end
  else parse_comparison stream

let condition text =
  let stream = { tokens = tokenize text } in
  let f = parse_disjunction stream in
  expect stream T_end;
  f

(* ------------------------------------------------------------------ *)
(* SELECT statement                                                    *)
(* ------------------------------------------------------------------ *)

type from_item = {
  relation : string;
  table_alias : string option;
}

let parse_ident stream what =
  match peek stream with
  | T_ident name ->
    advance stream;
    name
  | other ->
    parse_error "position %d: expected %s, found %s" (position stream) what
      (pp_token other)

let parse_from_item stream =
  let relation = parse_ident stream "a relation name" in
  let table_alias =
    if accept stream (T_keyword "AS") then
      Some (parse_ident stream "an alias")
    else None
  in
  { relation; table_alias }

let parse_from_list stream =
  let first = parse_from_item stream in
  let rec more acc =
    if accept stream (T_symbol ",") || accept stream (T_keyword "JOIN") then
      more (parse_from_item stream :: acc)
    else List.rev acc
  in
  more [ first ]

(* Aggregate function names are contextual, not keywords: an identifier
   only starts an aggregate when it is directly followed by '('. *)
let func_of_name name =
  match String.uppercase_ascii name with
  | "COUNT" -> Some `Count
  | "SUM" -> Some `Sum
  | "AVG" -> Some `Avg
  | "MIN" -> Some `Min
  | "MAX" -> Some `Max
  | _ -> None

type select_item =
  | S_column of string
  | S_aggregate of Aggregate.target

let default_output func =
  match Aggregate.source func with
  | None -> String.lowercase_ascii (Aggregate.func_name func)
  | Some a -> String.lowercase_ascii (Aggregate.func_name func) ^ "_" ^ a

let parse_aggregate stream kind =
  advance stream;
  expect stream (T_symbol "(");
  let func =
    match kind with
    | `Count ->
      (* COUNT( * ) and COUNT(attr) agree here: there are no nulls. *)
      if accept stream (T_symbol "*") then Aggregate.Count
      else begin
        ignore (parse_ident stream "an attribute or *");
        Aggregate.Count
      end
    | `Sum -> Aggregate.Sum (parse_ident stream "an attribute")
    | `Avg -> Aggregate.Avg (parse_ident stream "an attribute")
    | `Min -> Aggregate.Min (parse_ident stream "an attribute")
    | `Max -> Aggregate.Max (parse_ident stream "an attribute")
  in
  expect stream (T_symbol ")");
  let output =
    if accept stream (T_keyword "AS") then parse_ident stream "an output name"
    else default_output func
  in
  S_aggregate { Aggregate.func; output }

let parse_select_item stream =
  match peek stream, peek2 stream with
  | T_ident name, T_symbol "(" -> (
    match func_of_name name with
    | Some kind -> parse_aggregate stream kind
    | None -> S_column (parse_ident stream "an attribute"))
  | _ -> S_column (parse_ident stream "an attribute")

let parse_select_list stream =
  if accept stream (T_symbol "*") then `Star
  else begin
    let first = parse_select_item stream in
    let rec more acc =
      if accept stream (T_symbol ",") then
        more (parse_select_item stream :: acc)
      else List.rev acc
    in
    `Items (more [ first ])
  end

let view ~lookup text =
  let stream = { tokens = tokenize text } in
  expect stream (T_keyword "SELECT");
  let select = parse_select_list stream in
  expect stream (T_keyword "FROM");
  let from = parse_from_list stream in
  let where =
    if accept stream (T_keyword "WHERE") then Some (parse_disjunction stream)
    else None
  in
  let group =
    if accept stream (T_keyword "GROUP") then begin
      expect stream (T_keyword "BY");
      let first = parse_ident stream "a group-by key" in
      let rec more acc =
        if accept stream (T_symbol ",") then
          more (parse_ident stream "a group-by key" :: acc)
        else List.rev acc
      in
      Some (more [ first ])
    end
    else None
  in
  expect stream T_end;
  (* FROM items: aliased tables rename every attribute to alias_attr. *)
  let item_expr { relation; table_alias } =
    let base = Expr.base relation in
    match table_alias with
    | None -> base
    | Some alias ->
      let schema =
        match lookup relation with
        | schema -> schema
        | exception (Not_found | Failure _ | Relalg.Database.Unknown_relation _)
          ->
          parse_error "unknown relation %S" relation
      in
      Expr.rename
        (List.map
           (fun a -> (a, alias ^ "_" ^ a))
           (Schema.names schema))
        base
  in
  let joined = Expr.join_all (List.map item_expr from) in
  let selected =
    match where with
    | None -> joined
    | Some f -> Expr.select f joined
  in
  let items =
    match select with
    | `Star -> None
    | `Items items -> Some items
  in
  let has_aggregate =
    match items with
    | None -> false
    | Some items ->
      List.exists (function S_aggregate _ -> true | S_column _ -> false) items
  in
  match items, group, has_aggregate with
  | None, None, _ -> selected
  | None, Some _, _ -> parse_error "SELECT * cannot be combined with GROUP BY"
  | Some items, None, false ->
    Expr.project
      (List.map
         (function S_column c -> c | S_aggregate _ -> assert false)
         items)
      selected
  | Some items, group, true | Some items, (Some _ as group), false ->
    let keys = Option.value group ~default:[] in
    let columns =
      List.filter_map
        (function S_column c -> Some c | S_aggregate _ -> None)
        items
    in
    (* Plain select columns must be exactly the group keys, in order —
       any other column has no single value per group. *)
    if not (List.equal String.equal columns keys) then
      parse_error
        "non-aggregate SELECT columns must match the GROUP BY keys in order";
    let targets =
      List.filter_map
        (function S_aggregate t -> Some t | S_column _ -> None)
        items
    in
    Expr.group_by ~keys targets selected
