open Relalg
module Formula = Condition.Formula

type tree = {
  alias : string;
  children : tree list;
}

(* ------------------------------------------------------------------ *)
(* Equality classes of qualified attributes                           *)
(* ------------------------------------------------------------------ *)

let rec find parent a =
  match Hashtbl.find_opt parent a with
  | None -> a
  | Some p ->
    let root = find parent p in
    if not (Attr.equal root p) then Hashtbl.replace parent a root;
    root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if not (Attr.equal ra rb) then Hashtbl.replace parent ra rb

let equality_var_pair (a : Formula.atom) =
  match a.Formula.left, a.Formula.cmp, a.Formula.right, a.Formula.shift with
  | Formula.O_var x, Formula.Eq, Formula.O_var y, 0 -> Some (x, y)
  | _ -> None

(* The hypergraph view of a conjunctive SPJ: one hyperedge per source,
   whose vertices are the equality classes its attributes fall into.
   Classes private to one source are irrelevant to connectivity. *)
type analysis = {
  classes : Attr.t -> Attr.t; (* attr -> class representative *)
  vertices_of : (string * Attr.t list) list; (* alias -> shared classes *)
  class_attr : string -> Attr.t -> Attr.t option;
      (* alias, class -> an attribute of that source in the class *)
}

let analyze ~lookup (spj : Spj.t) conj =
  let parent = Hashtbl.create 16 in
  List.iter
    (fun atom ->
      match equality_var_pair atom with
      | Some (x, y) -> union parent x y
      | None -> ())
    conj;
  let classes a = find parent a in
  let schema_of (s : Spj.source) = Spj.qualified_schema lookup s in
  (* alias -> (class, attr) list *)
  let membership =
    List.map
      (fun (s : Spj.source) ->
        ( s.Spj.alias,
          List.map (fun a -> (classes a, a)) (Schema.names (schema_of s)) ))
      spj.Spj.sources
  in
  let count_sources cls =
    List.length
      (List.filter
         (fun (_, pairs) -> List.exists (fun (c, _) -> Attr.equal c cls) pairs)
         membership)
  in
  let vertices_of =
    List.map
      (fun (alias, pairs) ->
        ( alias,
          List.sort_uniq Attr.compare
            (List.filter_map
               (fun (c, _) -> if count_sources c >= 2 then Some c else None)
               pairs) ))
      membership
  in
  let class_attr alias cls =
    match List.assoc_opt alias membership with
    | None -> None
    | Some pairs ->
      List.find_map
        (fun (c, a) -> if Attr.equal c cls then Some a else None)
        pairs
  in
  { classes; vertices_of; class_attr }

(* ------------------------------------------------------------------ *)
(* GYO ear removal                                                    *)
(* ------------------------------------------------------------------ *)

let join_tree ~lookup (spj : Spj.t) =
  match spj.Spj.condition_dnf with
  | [ conj ] when spj.Spj.sources <> [] ->
    let analysis = analyze ~lookup spj conj in
    (* Mutable working set of edges; children accumulate as ears fold
       into their witnesses. *)
    let edges =
      ref
        (List.map
           (fun (alias, vertices) -> (alias, vertices, ref []))
           analysis.vertices_of)
    in
    let subset small big = List.for_all (fun v -> List.mem v big) small in
    let remove alias =
      edges := List.filter (fun (a, _, _) -> not (String.equal a alias)) !edges
    in
    let children_of alias =
      let _, _, kids =
        List.find (fun (a, _, _) -> String.equal a alias) !edges
      in
      kids
    in
    (* An ear: its vertices shared with OTHER edges all lie in a single
       witness edge. *)
    let find_ear () =
      List.find_map
        (fun (alias, vertices, kids) ->
          let others =
            List.filter (fun (a, _, _) -> not (String.equal a alias)) !edges
          in
          if others = [] then None
          else begin
            let shared =
              List.filter
                (fun v ->
                  List.exists (fun (_, vs, _) -> List.mem v vs) others)
                vertices
            in
            let witness =
              List.find_opt (fun (_, vs, _) -> subset shared vs) others
            in
            match witness with
            | Some (walias, _, _) -> Some (alias, kids, walias)
            | None -> None
          end)
        !edges
    in
    let rec reduce () =
      match !edges with
      | [ (alias, _, kids) ] -> Some { alias; children = !kids }
      | _ -> (
        match find_ear () with
        | None -> None (* cyclic *)
        | Some (ear_alias, ear_kids, witness_alias) ->
          let ear_tree = { alias = ear_alias; children = !ear_kids } in
          remove ear_alias;
          let witness_kids = children_of witness_alias in
          witness_kids := ear_tree :: !witness_kids;
          reduce ())
    in
    reduce ()
  | _ -> None

let acyclic ~lookup spj = Option.is_some (join_tree ~lookup spj)

(* ------------------------------------------------------------------ *)
(* Source connectivity                                                *)
(* ------------------------------------------------------------------ *)

let components ~lookup (spj : Spj.t) =
  let aliases = List.map (fun (s : Spj.source) -> s.Spj.alias) spj.Spj.sources in
  (* Map every qualified attribute to the alias of its source; constants and
     foreign names simply don't connect anything. *)
  let attr_alias =
    let table = Hashtbl.create 32 in
    List.iter
      (fun (s : Spj.source) ->
        List.iter
          (fun a -> Hashtbl.replace table a s.Spj.alias)
          (Schema.names (Spj.qualified_schema lookup s)))
      spj.Spj.sources;
    fun a -> Hashtbl.find_opt table a
  in
  let parent = Hashtbl.create 8 in
  List.iter
    (fun conj ->
      List.iter
        (fun atom ->
          match
            List.sort_uniq String.compare
              (List.filter_map attr_alias (Formula.atom_vars atom))
          with
          | first :: rest -> List.iter (fun other -> union parent first other) rest
          | [] -> ())
        conj)
    spj.Spj.condition_dnf;
  let roots =
    List.sort_uniq String.compare (List.map (fun a -> find parent a) aliases)
  in
  List.map
    (fun root ->
      List.filter (fun a -> String.equal (find parent a) root) aliases)
    roots

(* ------------------------------------------------------------------ *)
(* Yannakakis evaluation                                              *)
(* ------------------------------------------------------------------ *)

(* Key pairs between two relations: one per equality class with an
   attribute on both sides. *)
let keys_between analysis schema_a schema_b =
  let classes_of schema =
    List.sort_uniq Attr.compare (List.map analysis.classes (Schema.names schema))
  in
  let attr_in schema cls =
    List.find_opt
      (fun a -> Attr.equal (analysis.classes a) cls)
      (Schema.names schema)
  in
  List.filter_map
    (fun cls ->
      match attr_in schema_a cls, attr_in schema_b cls with
      | Some a, Some b -> Some (a, b)
      | _ -> None)
    (classes_of schema_a)
  |> List.filter (fun (_, b) -> Schema.mem schema_b b)

let eval ~lookup ~sources (spj : Spj.t) =
  match spj.Spj.condition_dnf, join_tree ~lookup spj with
  | [ conj ], Some tree ->
    let analysis = analyze ~lookup spj conj in
    (* Working copies, filtered by source-local predicates. *)
    let state = Hashtbl.create 8 in
    List.iter
      (fun (alias, r) ->
        Hashtbl.replace state alias
          (Planner.filter_local spj.Spj.condition_dnf r))
      sources;
    let get alias = Hashtbl.find state alias in
    let set alias r = Hashtbl.replace state alias r in
    let semijoin_into ~target ~source_rel =
      let target_rel = get target in
      let keys =
        keys_between analysis (Relation.schema target_rel)
          (Relation.schema source_rel)
      in
      set target (Ops.semijoin target_rel source_rel ~keys)
    in
    (* Bottom-up pass: parents lose tuples dangling w.r.t. children. *)
    let rec up node =
      List.iter
        (fun child ->
          up child;
          semijoin_into ~target:node.alias ~source_rel:(get child.alias))
        node.children
    in
    (* Top-down pass: children lose tuples dangling w.r.t. the parent. *)
    let rec down node =
      List.iter
        (fun child ->
          semijoin_into ~target:child.alias ~source_rel:(get node.alias);
          down child)
        node.children
    in
    up tree;
    down tree;
    (* Join along the tree: after full reduction, every intermediate is
       bounded by the output size. *)
    let rec join_pass node =
      List.fold_left
        (fun acc child ->
          let child_rel = join_pass child in
          let keys =
            keys_between analysis (Relation.schema acc)
              (Relation.schema child_rel)
          in
          (* Shared classes may repeat attributes across sides; equijoin
             keeps both, which the final projection resolves. *)
          Ops.equijoin acc child_rel ~keys)
        (get node.alias) node.children
    in
    let joined = join_pass tree in
    (* Residual conditions (cross-class comparisons, constants on classes)
       and the projection. *)
    let filtered = Planner.filter spj.Spj.condition_dnf joined in
    Planner.project_to ~projection:spj.Spj.projection filtered
  | _ ->
    Planner.run ~sources ~condition_dnf:spj.Spj.condition_dnf
      ~projection:spj.Spj.projection ()

let rec pp_tree ppf { alias; children } =
  if children = [] then Format.pp_print_string ppf alias
  else
    Format.fprintf ppf "@[<hov 2>(%s@ %a)@]" alias
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_tree)
      children
