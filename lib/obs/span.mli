(** Phase-level tracing: named, nested, labelled spans.

    A span measures one phase of the maintenance pipeline (netting,
    screening, a truth-table row, delta apply, …).  Spans nest: the
    [depth] of a span is the number of spans open when it started, and a
    child is always fully contained in its parent's [start_ns, start_ns +
    dur_ns] window, which is what the Chrome trace viewer uses to rebuild
    the tree.

    Recording is gated on {!Control.enabled}: when telemetry is off,
    {!with_span} runs its body directly — one atomic load and a branch —
    and the argument thunk is never evaluated.  The sink is a bounded
    in-memory buffer behind a mutex, safe to use from multiple domains;
    nesting depth is tracked per domain (each domain is its own span
    stack, exported as its own trace lane); past {!capacity} spans
    further spans are counted but dropped. *)

type t = {
  name : string;
  cat : string;  (** coarse grouping, e.g. ["maintenance"] *)
  start_ns : int;  (** {!Clock.now_ns} at entry *)
  dur_ns : int;
  depth : int;  (** 0 for top-level spans {e on this domain} *)
  domain : int;  (** id of the domain that recorded the span *)
  args : (string * Json.t) list;
}

(** [with_span ?cat ?args name f] times [f] as one span.  [args] is
    evaluated {e after} [f] returns (also on exceptions), so the thunk may
    read results computed inside [f] through shared references. *)
val with_span :
  ?cat:string -> ?args:(unit -> (string * Json.t) list) -> string ->
  (unit -> 'a) -> 'a

(** Completed spans in completion order (children before their parents),
    leaving the sink empty. *)
val drain : unit -> t list

(** Number of spans currently buffered. *)
val length : unit -> int

(** Spans dropped because the sink was full, since the last {!reset}. *)
val dropped : unit -> int

val capacity : int
val reset : unit -> unit
