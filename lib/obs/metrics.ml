type labels = (string * string) list

let buckets_count = 63

type hist = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type cell =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of hist

type key = string * labels

let mutex = Mutex.create ()
let table : (key, cell) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let canonical labels = List.sort compare labels

let cell_kind = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create name labels make =
  let key = (name, canonical labels) in
  match Hashtbl.find_opt table key with
  | Some cell -> cell
  | None ->
    let cell = make () in
    Hashtbl.add table key cell;
    cell

let wrong_kind name cell expected =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S is a %s, not a %s" name (cell_kind cell)
       expected)

let add ?(labels = []) name delta =
  if Control.enabled () then
    locked (fun () ->
        match find_or_create name labels (fun () -> Counter (ref 0)) with
        | Counter r -> r := !r + delta
        | cell -> wrong_kind name cell "counter")

let set_gauge ?(labels = []) name value =
  if Control.enabled () then
    locked (fun () ->
        match find_or_create name labels (fun () -> Gauge (ref 0.0)) with
        | Gauge r -> r := value
        | cell -> wrong_kind name cell "gauge")

let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go v b = if v <= 1 then b else go (v lsr 1) (b + 1) in
    min (buckets_count - 1) (go v 0)
  end

let bucket_estimate b = if b = 0 then 1.0 else 1.5 *. (2.0 ** float_of_int b)

let new_hist () =
  Histogram
    {
      buckets = Array.make buckets_count 0;
      h_count = 0;
      h_sum = 0;
      h_min = max_int;
      h_max = 0;
    }

let observe ?(labels = []) name v =
  if Control.enabled () then
    locked (fun () ->
        match find_or_create name labels new_hist with
        | Histogram h ->
          let v = max 0 v in
          h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum + v;
          if v < h.h_min then h.h_min <- v;
          if v > h.h_max then h.h_max <- v
        | cell -> wrong_kind name cell "histogram")

(* ------------------------------------------------------------------ *)
(* reading                                                             *)
(* ------------------------------------------------------------------ *)

let lookup name labels = Hashtbl.find_opt table (name, canonical labels)

let counter_value ?(labels = []) name =
  locked (fun () ->
      match lookup name labels with
      | Some (Counter r) -> !r
      | _ -> 0)

let gauge_value ?(labels = []) name =
  locked (fun () ->
      match lookup name labels with
      | Some (Gauge r) -> Some !r
      | _ -> None)

type histogram_summary = {
  count : int;
  sum : int;
  mean : float;
  min : int;
  max : int;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let percentile_of_hist h p =
  if h.h_count = 0 then 0.0
  else begin
    let rank =
      max 1
        (int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.h_count)))
    in
    let rec walk b seen =
      if b >= buckets_count then bucket_estimate (buckets_count - 1)
      else begin
        let seen = seen + h.buckets.(b) in
        if seen >= rank then bucket_estimate b else walk (b + 1) seen
      end
    in
    walk 0 0
  end

let summary_of_hist h =
  {
    count = h.h_count;
    sum = h.h_sum;
    mean =
      (if h.h_count = 0 then 0.0
       else float_of_int h.h_sum /. float_of_int h.h_count);
    min = (if h.h_count = 0 then 0 else h.h_min);
    max = h.h_max;
    p50 = percentile_of_hist h 50.0;
    p90 = percentile_of_hist h 90.0;
    p95 = percentile_of_hist h 95.0;
    p99 = percentile_of_hist h 99.0;
  }

let histogram ?(labels = []) name =
  locked (fun () ->
      match lookup name labels with
      | Some (Histogram h) -> Some (summary_of_hist h)
      | _ -> None)

let label_sets name =
  locked (fun () ->
      Hashtbl.fold
        (fun (n, labels) _ acc -> if n = name then labels :: acc else acc)
        table [])
  |> List.sort_uniq compare

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let snapshot () =
  locked (fun () ->
      let entries kind =
        Hashtbl.fold
          (fun (name, labels) cell acc ->
            match kind, cell with
            | `Counter, Counter r ->
              Json.Obj
                [
                  ("name", Json.Str name);
                  ("labels", labels_json labels);
                  ("value", Json.Int !r);
                ]
              :: acc
            | `Gauge, Gauge r ->
              Json.Obj
                [
                  ("name", Json.Str name);
                  ("labels", labels_json labels);
                  ("value", Json.Float !r);
                ]
              :: acc
            | `Histogram, Histogram h ->
              let s = summary_of_hist h in
              Json.Obj
                [
                  ("name", Json.Str name);
                  ("labels", labels_json labels);
                  ("count", Json.Int s.count);
                  ("sum", Json.Int s.sum);
                  ("mean", Json.Float s.mean);
                  ("min", Json.Int s.min);
                  ("max", Json.Int s.max);
                  ("p50", Json.Float s.p50);
                  ("p90", Json.Float s.p90);
                  ("p95", Json.Float s.p95);
                  ("p99", Json.Float s.p99);
                ]
              :: acc
            | _ -> acc)
          table []
        |> List.sort compare
      in
      Json.Obj
        [
          ("counters", Json.List (entries `Counter));
          ("gauges", Json.List (entries `Gauge));
          ("histograms", Json.List (entries `Histogram));
        ])

let reset () = locked (fun () -> Hashtbl.reset table)
