type labels = (string * string) list

let buckets_count = 63

type hist = {
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type cell =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of hist

type key = string * labels

let mutex = Mutex.create ()
let table : (key, cell) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let canonical labels = List.sort compare labels

let cell_kind = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create name labels make =
  let key = (name, canonical labels) in
  match Hashtbl.find_opt table key with
  | Some cell -> cell
  | None ->
    let cell = make () in
    Hashtbl.add table key cell;
    cell

let wrong_kind name cell expected =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S is a %s, not a %s" name (cell_kind cell)
       expected)

let add ?(labels = []) name delta =
  if Control.enabled () then
    locked (fun () ->
        match find_or_create name labels (fun () -> Counter (ref 0)) with
        | Counter r -> r := !r + delta
        | cell -> wrong_kind name cell "counter")

let set_gauge ?(labels = []) name value =
  if Control.enabled () then
    locked (fun () ->
        match find_or_create name labels (fun () -> Gauge (ref 0.0)) with
        | Gauge r -> r := value
        | cell -> wrong_kind name cell "gauge")

let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go v b = if v <= 1 then b else go (v lsr 1) (b + 1) in
    min (buckets_count - 1) (go v 0)
  end

let bucket_estimate b = if b = 0 then 1.0 else 1.5 *. (2.0 ** float_of_int b)

let new_hist () =
  Histogram
    {
      buckets = Array.make buckets_count 0;
      h_count = 0;
      h_sum = 0;
      h_min = max_int;
      h_max = 0;
    }

let observe ?(labels = []) name v =
  if Control.enabled () then
    locked (fun () ->
        match find_or_create name labels new_hist with
        | Histogram h ->
          let v = max 0 v in
          h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum + v;
          if v < h.h_min then h.h_min <- v;
          if v > h.h_max then h.h_max <- v
        | cell -> wrong_kind name cell "histogram")

(* ------------------------------------------------------------------ *)
(* reading                                                             *)
(* ------------------------------------------------------------------ *)

let lookup name labels = Hashtbl.find_opt table (name, canonical labels)

let counter_value ?(labels = []) name =
  locked (fun () ->
      match lookup name labels with
      | Some (Counter r) -> !r
      | _ -> 0)

let gauge_value ?(labels = []) name =
  locked (fun () ->
      match lookup name labels with
      | Some (Gauge r) -> Some !r
      | _ -> None)

type histogram_summary = {
  count : int;
  sum : int;
  mean : float;
  min : int;
  max : int;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let percentile_of_hist h p =
  if h.h_count = 0 then 0.0
  else begin
    let rank =
      max 1
        (int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.h_count)))
    in
    let rec walk b seen =
      if b >= buckets_count then bucket_estimate (buckets_count - 1)
      else begin
        let seen = seen + h.buckets.(b) in
        if seen >= rank then bucket_estimate b else walk (b + 1) seen
      end
    in
    walk 0 0
  end

let summary_of_hist h =
  {
    count = h.h_count;
    sum = h.h_sum;
    mean =
      (if h.h_count = 0 then 0.0
       else float_of_int h.h_sum /. float_of_int h.h_count);
    min = (if h.h_count = 0 then 0 else h.h_min);
    max = h.h_max;
    p50 = percentile_of_hist h 50.0;
    p90 = percentile_of_hist h 90.0;
    p95 = percentile_of_hist h 95.0;
    p99 = percentile_of_hist h 99.0;
  }

let histogram ?(labels = []) name =
  locked (fun () ->
      match lookup name labels with
      | Some (Histogram h) -> Some (summary_of_hist h)
      | _ -> None)

let label_sets name =
  locked (fun () ->
      Hashtbl.fold
        (fun (n, labels) _ acc -> if n = name then labels :: acc else acc)
        table [])
  |> List.sort_uniq compare

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let snapshot () =
  locked (fun () ->
      let entries kind =
        Hashtbl.fold
          (fun (name, labels) cell acc ->
            match kind, cell with
            | `Counter, Counter r ->
              Json.Obj
                [
                  ("name", Json.Str name);
                  ("labels", labels_json labels);
                  ("value", Json.Int !r);
                ]
              :: acc
            | `Gauge, Gauge r ->
              Json.Obj
                [
                  ("name", Json.Str name);
                  ("labels", labels_json labels);
                  ("value", Json.Float !r);
                ]
              :: acc
            | `Histogram, Histogram h ->
              let s = summary_of_hist h in
              Json.Obj
                [
                  ("name", Json.Str name);
                  ("labels", labels_json labels);
                  ("count", Json.Int s.count);
                  ("sum", Json.Int s.sum);
                  ("mean", Json.Float s.mean);
                  ("min", Json.Int s.min);
                  ("max", Json.Int s.max);
                  ("p50", Json.Float s.p50);
                  ("p90", Json.Float s.p90);
                  ("p95", Json.Float s.p95);
                  ("p99", Json.Float s.p99);
                ]
              :: acc
            | _ -> acc)
          table []
        |> List.sort compare
      in
      Json.Obj
        [
          ("counters", Json.List (entries `Counter));
          ("gauges", Json.List (entries `Gauge));
          ("histograms", Json.List (entries `Histogram));
        ])

(* ------------------------------------------------------------------ *)
(* OpenMetrics text exposition                                         *)
(* ------------------------------------------------------------------ *)

(* Label values escape backslash, double-quote and newline per the
   OpenMetrics ABNF; everything else passes through verbatim. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Metric names: OpenMetrics allows [a-zA-Z_:][a-zA-Z0-9_:]*; every name
   this registry receives already fits, but sanitizing keeps the output
   spec-conformant even for exotic callers. *)
let sanitize_name name =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    name

let render_labels buf labels =
  match labels with
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (sanitize_name k);
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'

let render_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

(* Upper bound of log2 bucket [b]: the bucket holds values in
   [2^b, 2^(b+1) - 1] (bucket 0 also absorbs 0 and 1). *)
let bucket_upper b = (2.0 ** float_of_int (b + 1)) -. 1.0

let to_openmetrics () =
  let entries =
    locked (fun () ->
        Hashtbl.fold
          (fun (name, labels) cell acc ->
            let snap =
              match cell with
              | Counter r -> `Counter !r
              | Gauge r -> `Gauge !r
              | Histogram h ->
                `Histogram (Array.copy h.buckets, h.h_count, h.h_sum)
            in
            (name, labels, snap) :: acc)
          table [])
  in
  (* One MetricFamily per name: group, then emit families and their
     sample lines in sorted order so the exposition is deterministic. *)
  let families = Hashtbl.create 16 in
  List.iter
    (fun (name, labels, snap) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt families name) in
      Hashtbl.replace families name ((labels, snap) :: prev))
    entries;
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) families []
    |> List.sort compare
  in
  let buf = Buffer.create 4096 in
  let line name labels value =
    Buffer.add_string buf name;
    render_labels buf labels;
    Buffer.add_char buf ' ';
    Buffer.add_string buf value;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun name ->
      let series =
        List.sort compare (Hashtbl.find families name)
      in
      let metric = sanitize_name name in
      (* Counter family names drop the [_total] suffix; their sample
         lines keep it (OpenMetrics counters expose <family>_total). *)
      match series with
      | (_, `Counter _) :: _ ->
        let family =
          if String.length metric > 6
             && String.sub metric (String.length metric - 6) 6 = "_total"
          then String.sub metric 0 (String.length metric - 6)
          else metric
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" family);
        List.iter
          (fun (labels, snap) ->
            match snap with
            | `Counter v -> line (family ^ "_total") labels (string_of_int v)
            | _ -> ())
          series
      | (_, `Gauge _) :: _ ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" metric);
        List.iter
          (fun (labels, snap) ->
            match snap with
            | `Gauge v -> line metric labels (render_float v)
            | _ -> ())
          series
      | (_, `Histogram _) :: _ ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" metric);
        List.iter
          (fun (labels, snap) ->
            match snap with
            | `Histogram (buckets, count, sum) ->
              (* Cumulative buckets; empty log2 buckets are skipped, the
                 mandatory +Inf bucket always closes the series. *)
              let cumulative = ref 0 in
              Array.iteri
                (fun b n ->
                  if n > 0 then begin
                    cumulative := !cumulative + n;
                    line (metric ^ "_bucket")
                      (labels @ [ ("le", render_float (bucket_upper b)) ])
                      (string_of_int !cumulative)
                  end)
                buckets;
              line (metric ^ "_bucket")
                (labels @ [ ("le", "+Inf") ])
                (string_of_int count);
              line (metric ^ "_count") labels (string_of_int count);
              line (metric ^ "_sum") labels (string_of_int sum)
            | _ -> ())
          series
      | [] -> ())
    names;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let reset () = locked (fun () -> Hashtbl.reset table)
