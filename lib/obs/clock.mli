(** Nanosecond clock for spans and latency histograms.

    Timestamps are relative to process start (an epoch captured at module
    initialization), which keeps the full double precision of the
    underlying time source over any realistic run length and makes trace
    timestamps small and readable.  The default source is
    [Unix.gettimeofday]; within one process the offsets behave
    monotonically for the micro-to-millisecond spans we measure. *)

(** Nanoseconds since process start. *)
val now_ns : unit -> int

(** [set_source (Some f)] replaces the clock with [f] — used by tests to
    make span durations deterministic; [set_source None] restores the
    default. *)
val set_source : (unit -> int) option -> unit
