type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_into buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else if Float.is_finite x then
    Buffer.add_string buf (Printf.sprintf "%.12g" x)
  else Buffer.add_string buf "null"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> float_into buf x
  | Str s -> escape_into buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf code =
    (* Basic-multilingual-plane only; surrogate pairs are not recombined,
       which is enough for the identifiers the telemetry layer emits. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "bad \\u escape"
           in
           utf8_of_code buf code
         | _ -> fail "bad escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some c -> (
      match c with
      | '-' | '0' .. '9' -> parse_number ()
      | _ -> fail (Printf.sprintf "unexpected character %C" c))
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)
