type advisor = {
  predicted_differential : float;
  predicted_recompute : float;
  predicted_self_maintain : float option;
  chosen : string;
}

type view_record = {
  view : string;
  strategy : string;
  fallback : string option;
  advisor : advisor option;
  screen_rules : (string * int) list;
  screened_kept : int;
  screened_out : int;
  rows_evaluated : int;
  delta_inserts : int;
  delta_deletes : int;
  groups_touched : int;
  rescans : int;
  screen_ns : int;
  eval_ns : int;
  apply_ns : int;
  total_ns : int;
}

type event = {
  phase : string;
  kind : string;
  detail : string;
}

type commit = {
  seq : int;
  kind : string;
  outcome : string;
  failing_phase : string option;
  domains : int;
  net : (string * (int * int)) list;
  views : view_record list;
  events : event list;
  journal_bytes : int option;
  total_ns : int;
}

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let opt_str = function None -> Json.Null | Some s -> Json.Str s
let opt_int = function None -> Json.Null | Some i -> Json.Int i
let opt_float = function None -> Json.Null | Some x -> Json.Float x

let advisor_to_json a =
  Json.Obj
    [
      ("predicted_differential", Json.Float a.predicted_differential);
      ("predicted_recompute", Json.Float a.predicted_recompute);
      ("predicted_self_maintain", opt_float a.predicted_self_maintain);
      ("chosen", Json.Str a.chosen);
    ]

let view_to_json v =
  Json.Obj
    [
      ("view", Json.Str v.view);
      ("strategy", Json.Str v.strategy);
      ("fallback", opt_str v.fallback);
      ( "advisor",
        match v.advisor with None -> Json.Null | Some a -> advisor_to_json a );
      ( "screen_rules",
        Json.List
          (List.map
             (fun (rule, n) ->
               Json.Obj [ ("rule", Json.Str rule); ("dropped", Json.Int n) ])
             v.screen_rules) );
      ("screened_kept", Json.Int v.screened_kept);
      ("screened_out", Json.Int v.screened_out);
      ("rows_evaluated", Json.Int v.rows_evaluated);
      ("delta_inserts", Json.Int v.delta_inserts);
      ("delta_deletes", Json.Int v.delta_deletes);
      ("groups_touched", Json.Int v.groups_touched);
      ("rescans", Json.Int v.rescans);
      ("screen_ns", Json.Int v.screen_ns);
      ("eval_ns", Json.Int v.eval_ns);
      ("apply_ns", Json.Int v.apply_ns);
      ("total_ns", Json.Int v.total_ns);
    ]

let event_to_json e =
  Json.Obj
    [
      ("phase", Json.Str e.phase);
      ("kind", Json.Str e.kind);
      ("detail", Json.Str e.detail);
    ]

let commit_to_json c =
  Json.Obj
    [
      ("seq", Json.Int c.seq);
      ("kind", Json.Str c.kind);
      ("outcome", Json.Str c.outcome);
      ("failing_phase", opt_str c.failing_phase);
      ("domains", Json.Int c.domains);
      ( "net",
        Json.List
          (List.map
             (fun (relation, (inserts, deletes)) ->
               Json.Obj
                 [
                   ("relation", Json.Str relation);
                   ("inserts", Json.Int inserts);
                   ("deletes", Json.Int deletes);
                 ])
             c.net) );
      ("views", Json.List (List.map view_to_json c.views));
      ("events", Json.List (List.map event_to_json c.events));
      ("journal_bytes", opt_int c.journal_bytes);
      ("total_ns", Json.Int c.total_ns);
    ]

(* The parser is written in an error-monad style over a field path, so a
   malformed dump names exactly the field that broke. *)
let ( let* ) r f = Result.bind r f

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S is not an integer" name)

let as_str name = function
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" name)

(* Integral floats print as JSON integers; accept both on the way in. *)
let as_float name = function
  | Json.Float x -> Ok x
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "field %S is not a number" name)

let as_list name = function
  | Json.List items -> Ok items
  | _ -> Error (Printf.sprintf "field %S is not an array" name)

let opt_of parse name = function
  | Json.Null -> Ok None
  | v -> Result.map Option.some (parse name v)

let int_field name json = Result.bind (field name json) (as_int name)
let str_field name json = Result.bind (field name json) (as_str name)

let map_m f items =
  List.fold_right
    (fun item acc ->
      let* acc = acc in
      let* v = f item in
      Ok (v :: acc))
    items (Ok [])

let advisor_of_json json =
  let* predicted_differential =
    Result.bind (field "predicted_differential" json)
      (as_float "predicted_differential")
  in
  let* predicted_recompute =
    Result.bind (field "predicted_recompute" json) (as_float "predicted_recompute")
  in
  let* predicted_self_maintain =
    Result.bind
      (field "predicted_self_maintain" json)
      (opt_of as_float "predicted_self_maintain")
  in
  let* chosen = str_field "chosen" json in
  Ok { predicted_differential; predicted_recompute; predicted_self_maintain; chosen }

let view_of_json json =
  let* view = str_field "view" json in
  let* strategy = str_field "strategy" json in
  let* fallback = Result.bind (field "fallback" json) (opt_of as_str "fallback") in
  let* advisor_json = field "advisor" json in
  let* advisor =
    match advisor_json with
    | Json.Null -> Ok None
    | v -> Result.map Option.some (advisor_of_json v)
  in
  let* rules = Result.bind (field "screen_rules" json) (as_list "screen_rules") in
  let* screen_rules =
    map_m
      (fun entry ->
        let* rule = str_field "rule" entry in
        let* dropped = int_field "dropped" entry in
        Ok (rule, dropped))
      rules
  in
  let* screened_kept = int_field "screened_kept" json in
  let* screened_out = int_field "screened_out" json in
  let* rows_evaluated = int_field "rows_evaluated" json in
  let* delta_inserts = int_field "delta_inserts" json in
  let* delta_deletes = int_field "delta_deletes" json in
  let* groups_touched = int_field "groups_touched" json in
  let* rescans = int_field "rescans" json in
  let* screen_ns = int_field "screen_ns" json in
  let* eval_ns = int_field "eval_ns" json in
  let* apply_ns = int_field "apply_ns" json in
  let* total_ns = int_field "total_ns" json in
  Ok
    {
      view; strategy; fallback; advisor; screen_rules; screened_kept;
      screened_out; rows_evaluated; delta_inserts; delta_deletes;
      groups_touched; rescans; screen_ns; eval_ns; apply_ns; total_ns;
    }

let event_of_json json =
  let* phase = str_field "phase" json in
  let* kind = str_field "kind" json in
  let* detail = str_field "detail" json in
  Ok { phase; kind; detail }

let commit_of_json json =
  let* seq = int_field "seq" json in
  let* kind = str_field "kind" json in
  let* outcome = str_field "outcome" json in
  let* failing_phase =
    Result.bind (field "failing_phase" json) (opt_of as_str "failing_phase")
  in
  let* domains = int_field "domains" json in
  let* net_items = Result.bind (field "net" json) (as_list "net") in
  let* net =
    map_m
      (fun entry ->
        let* relation = str_field "relation" entry in
        let* inserts = int_field "inserts" entry in
        let* deletes = int_field "deletes" entry in
        Ok (relation, (inserts, deletes)))
      net_items
  in
  let* view_items = Result.bind (field "views" json) (as_list "views") in
  let* views = map_m view_of_json view_items in
  let* event_items = Result.bind (field "events" json) (as_list "events") in
  let* events = map_m event_of_json event_items in
  let* journal_bytes =
    Result.bind (field "journal_bytes" json) (opt_of as_int "journal_bytes")
  in
  let* total_ns = int_field "total_ns" json in
  Ok
    {
      seq; kind; outcome; failing_phase; domains; net; views; events;
      journal_bytes; total_ns;
    }

(* ------------------------------------------------------------------ *)
(* explain tree                                                        *)
(* ------------------------------------------------------------------ *)

let pp_commit ppf c =
  Format.fprintf ppf "%s #%d (domains %d): %s in %s" c.kind c.seq c.domains
    (match c.failing_phase with
    | Some phase -> Printf.sprintf "%s in phase %s" c.outcome phase
    | None -> c.outcome)
    (Summary.fmt_ns c.total_ns);
  if c.net <> [] then begin
    Format.fprintf ppf "@,  net:";
    List.iter
      (fun (relation, (inserts, deletes)) ->
        Format.fprintf ppf " %s +%d -%d" relation inserts deletes)
      c.net
  end;
  List.iter
    (fun v ->
      Format.fprintf ppf "@,  view %s: %s" v.view v.strategy;
      (match v.fallback with
      | Some reason -> Format.fprintf ppf "@,    fallback: %s" reason
      | None -> ());
      (match v.advisor with
      | Some a ->
        Format.fprintf ppf
          "@,    advisor: differential=%.0f recompute=%.0f self_maintain=%s \
           -> %s; actual %s"
          a.predicted_differential a.predicted_recompute
          (match a.predicted_self_maintain with
          | Some x -> Printf.sprintf "%.0f" x
          | None -> "n/a")
          a.chosen (Summary.fmt_ns v.total_ns)
      | None -> ());
      if
        v.screened_kept + v.screened_out > 0
        || v.screen_ns > 0
        || v.screen_rules <> []
      then begin
        Format.fprintf ppf "@,    screen: kept %d / dropped %d" v.screened_kept
          v.screened_out;
        (match v.screen_rules with
        | [] -> ()
        | rules ->
          Format.fprintf ppf " [%s]"
            (String.concat "; "
               (List.map
                  (fun (rule, n) -> Printf.sprintf "%s x%d" rule n)
                  rules)));
        Format.fprintf ppf "; %s" (Summary.fmt_ns v.screen_ns)
      end;
      if v.rows_evaluated > 0 || v.eval_ns > 0 then
        Format.fprintf ppf "@,    eval: %d rows; %s" v.rows_evaluated
          (Summary.fmt_ns v.eval_ns);
      Format.fprintf ppf "@,    apply: +%d -%d view tuples; %s" v.delta_inserts
        v.delta_deletes
        (Summary.fmt_ns v.apply_ns);
      if v.groups_touched > 0 || v.rescans > 0 then
        Format.fprintf ppf "@,    groups: %d touched, %d rescanned"
          v.groups_touched v.rescans)
    c.views;
  List.iter
    (fun e -> Format.fprintf ppf "@,  [%s] %s: %s" e.phase e.kind e.detail)
    c.events;
  match c.journal_bytes with
  | Some bytes -> Format.fprintf ppf "@,  journal: %d bytes" bytes
  | None -> ()

(* ------------------------------------------------------------------ *)
(* flight-recorder ring                                                *)
(* ------------------------------------------------------------------ *)

let recorder_capacity = 128

(* A preallocated circular array: append is an index bump and a store, so
   the always-on recorder costs a mutex round-trip and two writes per
   commit regardless of history length. *)
let ring : commit option array = Array.make recorder_capacity None
let next = ref 0
let total = ref 0
let mutex = Mutex.create ()
let recording_flag = Atomic.make true

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let set_recording b = Atomic.set recording_flag b
let recording () = Atomic.get recording_flag

let record c =
  if Atomic.get recording_flag then
    locked (fun () ->
        ring.(!next) <- Some c;
        next := (!next + 1) mod recorder_capacity;
        incr total)

let recent () =
  locked (fun () ->
      let n = min !total recorder_capacity in
      let start = (!next - n + recorder_capacity) mod recorder_capacity in
      List.init n (fun i ->
          Option.get ring.((start + i) mod recorder_capacity)))

let recorded () = locked (fun () -> !total)

let reset () =
  locked (fun () ->
      Array.fill ring 0 recorder_capacity None;
      next := 0;
      total := 0)

let dump_json ~reason =
  Json.Obj
    [
      ("flight_recorder", Json.Bool true);
      ("reason", Json.Str reason);
      ("capacity", Json.Int recorder_capacity);
      ("recorded_total", Json.Int (recorded ()));
      ("records", Json.List (List.map commit_to_json (recent ())));
    ]
