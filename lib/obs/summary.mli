(** Human-readable rendering of a trace and of the metrics registry. *)

val fmt_ns : int -> string
(** "417 ns", "23.4 us", "1.02 ms", "2.41 s". *)

(** Spans aggregated by name: count, total, mean, max, share of the
    top-level total — one line per distinct span name, widest total
    first. *)
val pp_spans : Format.formatter -> Span.t list -> unit

(** Every counter, gauge and histogram in the default registry. *)
val pp_metrics : Format.formatter -> unit -> unit
