(** Metrics registry: named counters, gauges and log-scale latency
    histograms, keyed by name plus a label set (e.g. view and phase).

    All mutation goes through the process-wide default registry and is
    gated on {!Control.enabled} (a disabled registry makes {!add} /
    {!set_gauge} / {!observe} no-ops); reads work regardless, so a
    snapshot can be taken after disabling telemetry.  The registry is
    mutex-protected and safe across domains.

    Histograms bucket values (nanoseconds by convention) by [floor (log2
    v)]: 63 buckets cover the full non-negative int range, and quantiles
    are estimated as the geometric midpoint of the bucket holding the
    rank, so a histogram costs a fixed 63-slot array no matter how many
    observations it absorbs.  The estimate is exact to within a factor of
    2 and deterministic — unit tests pin it down. *)

type labels = (string * string) list
(** Label order is irrelevant: keys are canonicalized by sorting. *)

val add : ?labels:labels -> string -> int -> unit
(** Increment a counter (registered on first use). *)

val set_gauge : ?labels:labels -> string -> float -> unit
val observe : ?labels:labels -> string -> int -> unit
(** Record one histogram observation (ns by convention). *)

(** {2 Reading} *)

val counter_value : ?labels:labels -> string -> int
(** 0 when the counter does not exist. *)

val gauge_value : ?labels:labels -> string -> float option

type histogram_summary = {
  count : int;
  sum : int;
  mean : float;
  min : int;
  max : int;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

val histogram : ?labels:labels -> string -> histogram_summary option

(** All registered label sets of a metric name, e.g. every [view] a
    histogram was observed under. *)
val label_sets : string -> labels list

(** Whole-registry JSON snapshot:
    [{"counters": [...], "gauges": [...], "histograms": [...]}], each
    entry carrying [name], [labels] and its values. *)
val snapshot : unit -> Json.t

(** Whole-registry OpenMetrics text exposition (the format Prometheus
    scrapes): one MetricFamily per metric name with a [# TYPE] line,
    counter samples under [<family>_total], gauges verbatim, histograms
    as cumulative [_bucket{le="..."}] series over the log2 buckets (plus
    the mandatory [+Inf] bucket, [_count] and [_sum]), label values
    escaped per the spec, families and series in deterministic sorted
    order, terminated by [# EOF]. *)
val to_openmetrics : unit -> string

val reset : unit -> unit

(** {2 Bucketing internals, exposed for tests} *)

val bucket_of : int -> int
(** [floor (log2 v)] clamped to [[0, 62]]; 0 for values [<= 1]. *)

val bucket_estimate : int -> float
(** Representative value of a bucket: 1.0 for bucket 0, else
    [1.5 *. 2.0 ** bucket]. *)
