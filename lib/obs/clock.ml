let epoch = Unix.gettimeofday ()
let source : (unit -> int) option ref = ref None
let default_ns () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

let now_ns () =
  match !source with
  | None -> default_ns ()
  | Some f -> f ()

let set_source s = source := s
