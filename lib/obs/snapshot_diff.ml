type options = {
  tolerance : float;
  timing_tolerance : float;
  check_timing : bool;
}

let default = { tolerance = 0.30; timing_tolerance = 3.0; check_timing = false }

type outcome = {
  regressions : string list;
  notes : string list;
  compared : int;
}

let num = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float x -> Some x
  | _ -> None

let num_member name json = Option.bind (Json.member name json) num

(* [path "a.b" json] follows object members. *)
let path keys json =
  List.fold_left
    (fun acc key -> Option.bind acc (Json.member key))
    (Some json)
    (String.split_on_char '.' keys)

let num_path keys json = Option.bind (path keys json) num

let list_path keys json =
  match path keys json with Some (Json.List items) -> Some items | _ -> None

let str_member name json =
  match Json.member name json with Some (Json.Str s) -> Some s | _ -> None

let compare_snapshots opts ~baseline ~current =
  let regressions = ref [] and notes = ref [] and compared = ref 0 in
  let regress fmt = Printf.ksprintf (fun m -> regressions := m :: !regressions) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  (* A deterministic field: relative drift beyond [tolerance] regresses. *)
  let deterministic ~what ~worse_when base cur =
    incr compared;
    let drift =
      if base = 0.0 then Float.abs cur
      else Float.abs (cur -. base) /. Float.abs base
    in
    let worse =
      match worse_when with `Lower -> cur < base | `Either -> true
    in
    if drift > opts.tolerance && worse then
      regress "%s: %.4g -> %.4g (drift %.0f%% > %.0f%% tolerance)" what base
        cur (drift *. 100.0) (opts.tolerance *. 100.0)
  in
  (* A timing field: degradation beyond [timing_tolerance] regresses only
     under [check_timing]; otherwise it is reported as a note. *)
  let timing ~what ~worse_when base cur =
    incr compared;
    let degraded =
      match worse_when with
      | `Higher -> base > 0.0 && cur > base *. opts.timing_tolerance
      | `Lower -> cur > 0.0 && base > cur *. opts.timing_tolerance
    in
    if degraded then
      if opts.check_timing then
        regress "%s: %.4g -> %.4g (beyond %.1fx timing tolerance)" what base
          cur opts.timing_tolerance
      else
        note "%s: %.4g -> %.4g (timing; not gated against this baseline)"
          what base cur
  in
  let both keys = (num_path keys baseline, num_path keys current) in
  (* schema version must never move backwards *)
  (match both "schema_version" with
  | Some base, Some cur ->
    incr compared;
    if cur < base then
      regress "schema_version went backwards: %.0f -> %.0f" base cur
  | _, None -> regress "current snapshot has no schema_version"
  | None, _ -> regress "baseline snapshot has no schema_version");
  (* per-view: matched by name against the baseline's view list *)
  let views_of json =
    match list_path "views" json with Some vs -> vs | None -> []
  in
  let current_views = views_of current in
  List.iter
    (fun base_view ->
      match str_member "name" base_view with
      | None -> ()
      | Some name -> (
        match
          List.find_opt
            (fun v -> str_member "name" v = Some name)
            current_views
        with
        | None -> regress "view %S disappeared from the snapshot" name
        | Some cur_view ->
          (match (num_member "commits" base_view, num_member "commits" cur_view)
           with
          | Some base, Some cur ->
            deterministic ~what:(Printf.sprintf "views.%s.commits" name)
              ~worse_when:`Either base cur
          | _ -> regress "view %S lacks a commits field" name);
          (* screening ratio: deterministic for the canonical workload *)
          (let ratio v =
             match (num_member "screened_out" v, num_member "screened_kept" v)
             with
             | Some out, Some kept when out +. kept > 0.0 ->
               Some (out /. (out +. kept))
             | _ -> None
           in
           match (ratio base_view, ratio cur_view) with
           | Some base, Some cur ->
             incr compared;
             if base -. cur > opts.tolerance then
               regress
                 "views.%s screening ratio collapsed: %.2f -> %.2f (the \
                  Theorem 4.1 screen stopped dropping updates)"
                 name base cur
           | _ -> ());
          List.iter
            (fun field ->
              match
                (num_member field base_view, num_member field cur_view)
              with
              | Some base, Some cur ->
                timing
                  ~what:(Printf.sprintf "views.%s.%s" name field)
                  ~worse_when:`Higher base cur
              | _ -> ())
            [ "p50_ns"; "p95_ns" ]))
    (views_of baseline);
  (* advisor calibration must keep existing *)
  (match both "advisor.calibration.samples" with
  | Some base, Some cur when base > 0.0 ->
    incr compared;
    if cur <= 0.0 then
      regress "advisor.calibration.samples: %.0f -> 0 (calibration died)" base
  | _ -> ());
  (match (list_path "advisor.pairs" baseline, list_path "advisor.pairs" current)
   with
  | Some (_ :: _), Some [] ->
    regress "advisor.pairs is empty (predicted-vs-actual pairs disappeared)"
  | Some (_ :: _), None -> regress "advisor.pairs missing from the snapshot"
  | _ -> ());
  (* E18/E23: speedups compare only when both machines had the cores —
     and a skipped comparison is logged as a note, never silent, so a
     reader of the diff knows the parallel axis went unchecked.  The
     schema_version 6 snapshot splits "parallel" into per_view and
     sharded sub-sections; a flat pre-v6 baseline falls back to its
     top-level speedup fields (compared against the current per_view
     section, the same fan-out measurement) and has no sharded data to
     compare at all. *)
  (let cores json =
     Option.value ~default:1.0 (num_path "parallel.cores_available" json)
   in
   let usable = Float.min (cores baseline) (cores current) in
   let speedup section field json =
     match num_path (Printf.sprintf "parallel.%s.%s" section field) json with
     | Some v -> Some v
     | None when section = "per_view" ->
       (* pre-v6 flat layout *)
       num_path ("parallel." ^ field) json
     | None -> None
   in
   List.iter
     (fun section ->
       List.iter
         (fun (field, domains) ->
           let what = Printf.sprintf "parallel.%s.%s" section field in
           match (speedup section field baseline, speedup section field current)
           with
           | Some base, Some cur ->
             if usable >= domains then
               timing ~what ~worse_when:`Lower base cur
             else
               note
                 "%s: %.2f -> %.2f skipped (cores_available %.0f < %.0f \
                  domains on at least one machine)"
                 what base cur usable domains
           | _ -> ())
         [ ("speedup_at_2", 2.0); ("speedup_at_4", 4.0); ("speedup_at_8", 8.0) ])
     [ "per_view"; "sharded" ]);
  (* E20: the journaling budget is an absolute contract, not a ratio *)
  (match num_path "resilience.journal_overhead_pct" current with
  | Some pct ->
    incr compared;
    if pct > 5.0 then
      if opts.check_timing then
        regress "resilience.journal_overhead_pct %.2f exceeds the 5%% budget"
          pct
      else
        note "resilience.journal_overhead_pct %.2f exceeds the 5%% budget \
              (timing; not gated)" pct
  | None -> regress "resilience.journal_overhead_pct missing");
  (* E21: certified coverage is deterministic; the reduction is timing *)
  (match
     ( num_path "self_maintenance.commits" baseline,
       num_path "self_maintenance.self_maintained_commits" baseline,
       num_path "self_maintenance.commits" current,
       num_path "self_maintenance.self_maintained_commits" current )
   with
  | Some base_total, Some base_cert, Some cur_total, Some cur_cert ->
    incr compared;
    if base_cert >= base_total && cur_cert < cur_total then
      regress
        "self_maintenance coverage broke: %.0f/%.0f certified commits (was \
         %.0f/%.0f)"
        cur_cert cur_total base_cert base_total
  | _ -> ());
  (match both "self_maintenance.eval_reduction" with
  | Some base, Some cur ->
    incr compared;
    if cur <= 1.0 then
      regress
        "self_maintenance.eval_reduction %.2fx: the certified arm no longer \
         beats differential evaluation"
        cur
    else timing ~what:"self_maintenance.eval_reduction" ~worse_when:`Lower base cur
  | _ -> ());
  (* E24: the groups a fixed-seed stream touches are deterministic; the
     incremental-vs-recompute speedup is timing, but must stay > 1x *)
  (match both "aggregate.groups_touched" with
  | Some base, Some cur ->
    deterministic ~what:"aggregate.groups_touched" ~worse_when:`Either base cur
  | _ -> ());
  (match both "aggregate.speedup" with
  | Some base, Some cur ->
    incr compared;
    if cur <= 1.0 then
      regress
        "aggregate.speedup %.2fx: incremental grouped maintenance no longer \
         beats full recompute"
        cur
    else timing ~what:"aggregate.speedup" ~worse_when:`Lower base cur
  | Some _, None -> regress "aggregate section missing from the snapshot"
  | _ -> ());
  (* E25: replay count over the fixed recovery curve is deterministic;
     the group-commit WAL budget is an absolute contract like E20 *)
  (match both "durability.records_replayed_total" with
  | Some base, Some cur ->
    deterministic ~what:"durability.records_replayed_total" ~worse_when:`Either
      base cur
  | Some _, None -> regress "durability section missing from the snapshot"
  | _ -> ());
  (match num_path "durability.wal_overhead_pct" current with
  | Some pct ->
    incr compared;
    if pct > 10.0 then
      if opts.check_timing then
        regress "durability.wal_overhead_pct %.2f exceeds the 10%% budget" pct
      else
        note "durability.wal_overhead_pct %.2f exceeds the 10%% budget \
              (timing; not gated)" pct
  | None ->
    if path "durability" baseline <> None then
      regress "durability.wal_overhead_pct missing");
  {
    regressions = List.rev !regressions;
    notes = List.rev !notes;
    compared = !compared;
  }

(* ------------------------------------------------------------------ *)
(* synthetic degradation for --self-test                               *)
(* ------------------------------------------------------------------ *)

let map_member name f = function
  | Json.Obj fields ->
    Json.Obj
      (List.map (fun (k, v) -> if k = name then (k, f v) else (k, v)) fields)
  | other -> other

let scale_num factor = function
  | Json.Int i -> Json.Int (int_of_float (float_of_int i *. factor))
  | Json.Float x -> Json.Float (x *. factor)
  | other -> other

let degrade json =
  let degrade_view view =
    view
    |> map_member "commits" (scale_num 0.5)
    |> map_member "screened_out" (fun _ -> Json.Int 0)
    |> map_member "p50_ns" (scale_num 10.0)
    |> map_member "p95_ns" (scale_num 10.0)
  in
  json
  |> map_member "views" (function
       | Json.List views -> Json.List (List.map degrade_view views)
       | other -> other)
  |> map_member "advisor" (fun advisor ->
         advisor
         |> map_member "pairs" (fun _ -> Json.List [])
         |> map_member "calibration"
              (map_member "samples" (fun _ -> Json.Int 0)))
  |> map_member "self_maintenance" (fun sm ->
         sm
         |> map_member "self_maintained_commits" (fun _ -> Json.Int 0)
         |> map_member "eval_reduction" (fun _ -> Json.Float 0.5))
  |> map_member "aggregate" (fun agg ->
         agg
         |> map_member "groups_touched" (fun _ -> Json.Int 0)
         |> map_member "speedup" (fun _ -> Json.Float 0.5))
  |> map_member "durability" (fun d ->
         d
         |> map_member "records_replayed_total" (fun _ -> Json.Int 0)
         |> map_member "wal_overhead_pct" (fun _ -> Json.Float 50.0))
