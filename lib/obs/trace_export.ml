let event (s : Span.t) =
  let base =
    [
      ("name", Json.Str s.Span.name);
      ("cat", Json.Str s.Span.cat);
      ("ph", Json.Str "X");
      ("ts", Json.Float (float_of_int s.Span.start_ns /. 1e3));
      ("dur", Json.Float (float_of_int s.Span.dur_ns /. 1e3));
      ("pid", Json.Int 1);
      (* One lane per domain: spans recorded by pool workers land in
         their own track instead of interleaving with domain 0. *)
      ("tid", Json.Int s.Span.domain);
    ]
  in
  let args =
    match s.Span.args with
    | [] -> []
    | fields -> [ ("args", Json.Obj fields) ]
  in
  Json.Obj (base @ args)

let to_json ?(meta = []) spans =
  (* Chrome sorts stably by ts but resolves nesting more reliably when
     parents precede children, so emit in start order. *)
  let ordered =
    List.stable_sort
      (fun (a : Span.t) (b : Span.t) ->
        match compare a.Span.start_ns b.Span.start_ns with
        | 0 -> compare a.Span.depth b.Span.depth
        | c -> c)
      spans
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event ordered));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj (("generator", Json.Str "ivm.obs") :: meta));
    ]

let write_file ~path ?meta spans = Json.to_file path (to_json ?meta spans)
