let fmt_ns ns =
  let ns = float_of_int ns in
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

type agg = {
  mutable a_count : int;
  mutable a_total : int;
  mutable a_max : int;
}

let pp_spans ppf spans =
  let by_name : (string, agg) Hashtbl.t = Hashtbl.create 16 in
  let toplevel_total = ref 0 in
  List.iter
    (fun (s : Span.t) ->
      if s.Span.depth = 0 then toplevel_total := !toplevel_total + s.Span.dur_ns;
      let agg =
        match Hashtbl.find_opt by_name s.Span.name with
        | Some a -> a
        | None ->
          let a = { a_count = 0; a_total = 0; a_max = 0 } in
          Hashtbl.add by_name s.Span.name a;
          a
      in
      agg.a_count <- agg.a_count + 1;
      agg.a_total <- agg.a_total + s.Span.dur_ns;
      agg.a_max <- max agg.a_max s.Span.dur_ns)
    spans;
  let rows =
    Hashtbl.fold (fun name a acc -> (name, a) :: acc) by_name []
    |> List.sort (fun (_, a) (_, b) -> compare b.a_total a.a_total)
  in
  Format.fprintf ppf "%d spans, %s of top-level time@."
    (List.length spans) (fmt_ns !toplevel_total);
  List.iter
    (fun (name, a) ->
      let mean = if a.a_count = 0 then 0 else a.a_total / a.a_count in
      Format.fprintf ppf "  %-14s %6d calls  total %-10s mean %-10s max %s@."
        name a.a_count (fmt_ns a.a_total) (fmt_ns mean) (fmt_ns a.a_max))
    rows

let labels_string json =
  match json with
  | Json.Obj [] | Json.Null -> ""
  | Json.Obj fields ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             match v with
             | Json.Str s -> Printf.sprintf "%s=%s" k s
             | other -> Printf.sprintf "%s=%s" k (Json.to_string other))
           fields)
    ^ "}"
  | other -> Json.to_string other

let field name entry =
  Option.value ~default:Json.Null (Json.member name entry)

let entry_name entry =
  let name =
    match field "name" entry with
    | Json.Str s -> s
    | other -> Json.to_string other
  in
  name ^ labels_string (field "labels" entry)

let pp_metrics ppf () =
  let snapshot = Metrics.snapshot () in
  let list_of name =
    match Json.member name snapshot with
    | Some (Json.List entries) -> entries
    | _ -> []
  in
  List.iter
    (fun entry ->
      Format.fprintf ppf "  %-46s %s@." (entry_name entry)
        (Json.to_string (field "value" entry)))
    (list_of "counters");
  List.iter
    (fun entry ->
      Format.fprintf ppf "  %-46s %s@." (entry_name entry)
        (Json.to_string (field "value" entry)))
    (list_of "gauges");
  List.iter
    (fun entry ->
      let as_int name =
        match field name entry with
        | Json.Int i -> i
        | Json.Float x -> int_of_float x
        | _ -> 0
      in
      Format.fprintf ppf
        "  %-46s count %d  mean %s  p50 %s  p95 %s  p99 %s  max %s@."
        (entry_name entry) (as_int "count")
        (fmt_ns (as_int "mean"))
        (fmt_ns (as_int "p50"))
        (fmt_ns (as_int "p95"))
        (fmt_ns (as_int "p99"))
        (fmt_ns (as_int "max")))
    (list_of "histograms")
