(** Commit provenance: why the engine did what it did.

    Telemetry ({!Span}, {!Metrics}) records how long each maintenance
    phase took; this module records the {e decisions} — which Theorem 4.1
    rule screened each update set, what the advisor predicted for all
    three arms and which one actually ran, why a forced self-maintain
    certificate fell back to differential, and what the journal did when
    a commit failed.  One {!commit} record is assembled per
    [Manager.commit]/[refresh] and rendered by [ivm_cli explain].

    The record types are plain strings and integers on purpose: [obs]
    sits below the core library, so strategy, arm and rule names arrive
    as the names the core prints anyway, and the whole record round-trips
    through {!Json} losslessly (property-tested).

    {2 Flight recorder}

    The last {!recorder_capacity} records are additionally kept in an
    always-on bounded ring buffer — independent of {!Control.enabled},
    mutex-protected, O(1) append — so that when a commit fails, a view is
    quarantined, or a retry ladder exhausts, [lib/resilience] can dump
    the recent decision history to a JSON file for post-mortem reading.
    The ring stores at most [recorder_capacity] records no matter how
    many commits run ({!recorded} keeps the lifetime count). *)

type advisor = {
  predicted_differential : float;  (** model cost units, all three arms *)
  predicted_recompute : float;
  predicted_self_maintain : float option;
      (** [None]: no certificate, or it does not cover this commit *)
  chosen : string;  (** arm the cost model picked *)
}

type view_record = {
  view : string;
  strategy : string;  (** concrete strategy that ran *)
  fallback : string option;
      (** why a forced self-maintain degraded to differential *)
  advisor : advisor option;
  screen_rules : (string * int) list;
      (** screening rule id -> update tuples it proved irrelevant *)
  screened_kept : int;
  screened_out : int;
  rows_evaluated : int;
  delta_inserts : int;
  delta_deletes : int;
  groups_touched : int;
      (** aggregate views: distinct groups whose accumulators moved *)
  rescans : int;
      (** aggregate views: groups rescanned after a MIN/MAX extremum's
          support drained to zero *)
  screen_ns : int;
  eval_ns : int;
  apply_ns : int;
  total_ns : int;  (** actual cost the advisor prediction is judged by *)
}

type event = {
  phase : string;  (** pipeline phase the event belongs to *)
  kind : string;  (** e.g. [fault], [rollback], [quarantine], [journal] *)
  detail : string;
}

type commit = {
  seq : int;  (** manager commit sequence number *)
  kind : string;  (** [commit] or [refresh] *)
  outcome : string;  (** [committed], [aborted] or [degraded] *)
  failing_phase : string option;  (** set when [outcome = "aborted"] *)
  domains : int;
  net : (string * (int * int)) list;
      (** relation -> net (inserts, deletes) sizes *)
  views : view_record list;
  events : event list;  (** journal/rollback/quarantine/fault events *)
  journal_bytes : int option;  (** undo-log size, protected commits only *)
  total_ns : int;
}

val commit_to_json : commit -> Json.t

(** Inverse of {!commit_to_json}; [Error] names the offending field. *)
val commit_of_json : Json.t -> (commit, string) result

(** Human-readable explain tree, the `ivm_cli explain` rendering. *)
val pp_commit : Format.formatter -> commit -> unit

(** {2 Recorder} *)

val recorder_capacity : int

(** The recorder is on by default and independent of {!Control.enabled}
    (post-mortems must exist even when telemetry is off); benches switch
    it off to measure its overhead. *)
val set_recording : bool -> unit

val recording : unit -> bool

(** Append one record (O(1); evicts the oldest past capacity). *)
val record : commit -> unit

(** Buffered records, oldest first; at most {!recorder_capacity}. *)
val recent : unit -> commit list

(** Lifetime record count since the last {!reset} (not capped). *)
val recorded : unit -> int

val reset : unit -> unit

(** The flight-recorder dump document: reason, capacity, lifetime count
    and the buffered records oldest-first.  Written to disk by
    [Resilience.Flight]. *)
val dump_json : reason:string -> Json.t
