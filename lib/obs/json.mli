(** Minimal JSON tree, printer and parser.

    The telemetry library exports machine-readable artifacts (Chrome
    traces, metric snapshots, bench snapshots) and the CI gate re-parses
    them, all without pulling a JSON dependency into the build.  The
    printer always emits valid JSON (strings are escaped, non-finite
    floats degrade to [null]); the parser accepts standard JSON with the
    usual whitespace rules and [\uXXXX] escapes (decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [to_file path t] writes [t] followed by a newline. *)
val to_file : string -> t -> unit

(** [parse s] parses exactly one JSON value (trailing whitespace allowed).
    Returns [Error message] with an offset on malformed input. *)
val parse : string -> (t, string) result

(** [member key t] looks up [key] when [t] is an object. *)
val member : string -> t -> t option
