(** Export spans as Chrome [trace_event] JSON (the "JSON Array Format"
    with an object envelope), loadable in [chrome://tracing], Perfetto or
    [speedscope].

    Every span becomes a complete event ([ph = "X"]) with microsecond
    [ts]/[dur]; nesting is reconstructed by the viewer from timestamp
    containment, so all events share [pid = 1], [tid = 1]. *)

val to_json : ?meta:(string * Json.t) list -> Span.t list -> Json.t
(** [meta] lands under the top-level ["otherData"] object. *)

val write_file :
  path:string -> ?meta:(string * Json.t) list -> Span.t list -> unit
