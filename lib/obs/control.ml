let flag = Atomic.make false
let enable () = Atomic.set flag true
let disable () = Atomic.set flag false
let enabled () = Atomic.get flag

let with_enabled f =
  let previous = Atomic.get flag in
  Atomic.set flag true;
  Fun.protect ~finally:(fun () -> Atomic.set flag previous) f
