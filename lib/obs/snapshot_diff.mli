(** Field-by-field comparison of two [BENCH_IVM.json] snapshots — the
    regression gate behind [tools/bench_diff.exe].

    Fields split into two classes:
    - {e deterministic} fields (commit counts, screening ratios, advisor
      sample presence, self-maintenance coverage, schema version) are
      identical across machines for the canonical workload and compare
      under [tolerance];
    - {e timing} fields (per-view latency percentiles, speedup curve,
      journaling overhead, eval reduction) depend on the hardware and
      compare under the looser [timing_tolerance] — and only count as
      regressions when [check_timing] is set, otherwise they surface as
      notes.  CI compares against a committed baseline from unknown
      hardware, so it runs with [check_timing = false]; a developer
      comparing two runs of the same machine turns it on. *)

type options = {
  tolerance : float;  (** relative slack on deterministic fields *)
  timing_tolerance : float;
      (** allowed degradation factor on timing fields (e.g. 3.0 = 3x) *)
  check_timing : bool;  (** count timing degradations as regressions *)
}

(** [{tolerance = 0.30; timing_tolerance = 3.0; check_timing = false}]. *)
val default : options

type outcome = {
  regressions : string list;  (** violations that should fail the gate *)
  notes : string list;  (** informational drift (timing while unchecked) *)
  compared : int;  (** fields actually compared *)
}

val compare_snapshots : options -> baseline:Json.t -> current:Json.t -> outcome

(** A synthetically degraded copy of a snapshot (halved commit counts,
    dead screening, missing calibration, slower percentiles, broken
    self-maintenance coverage) — [bench_diff --self-test] proves the gate
    rejects it and accepts the identity comparison. *)
val degrade : Json.t -> Json.t
