(** Global switch for the telemetry subsystem.

    Spans and metrics are recorded only while the switch is on; every
    instrumentation point guards on {!enabled} first, so with the switch
    off (the default) the cost of an instrumented call site is one atomic
    load and a branch.  The switch is process-wide: the CLI exposes it as
    [--no-obs], the bench harness and tests turn it on explicitly. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** [with_enabled f] runs [f] with telemetry on, restoring the previous
    state afterwards (also on exceptions). *)
val with_enabled : (unit -> 'a) -> 'a
