type t = {
  name : string;
  cat : string;
  start_ns : int;
  dur_ns : int;
  depth : int;
  args : (string * Json.t) list;
}

let capacity = 500_000
let mutex = Mutex.create ()
let sink : t list ref = ref [] (* newest first *)
let buffered = ref 0
let dropped_count = ref 0
let open_depth = ref 0

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let with_span ?(cat = "ivm") ?args name f =
  if not (Control.enabled ()) then f ()
  else begin
    let depth = locked (fun () ->
        let d = !open_depth in
        incr open_depth;
        d)
    in
    let start = Clock.now_ns () in
    let finish () =
      let dur = Clock.now_ns () - start in
      let args =
        match args with
        | None -> []
        | Some thunk -> ( try thunk () with _ -> [])
      in
      let span = { name; cat; start_ns = start; dur_ns = dur; depth; args } in
      locked (fun () ->
          decr open_depth;
          if !buffered >= capacity then incr dropped_count
          else begin
            sink := span :: !sink;
            incr buffered
          end)
    in
    match f () with
    | v ->
      finish ();
      v
    | exception exn ->
      finish ();
      raise exn
  end

let drain () =
  locked (fun () ->
      let spans = List.rev !sink in
      sink := [];
      buffered := 0;
      spans)

let length () = locked (fun () -> !buffered)
let dropped () = locked (fun () -> !dropped_count)

let reset () =
  locked (fun () ->
      sink := [];
      buffered := 0;
      dropped_count := 0;
      open_depth := 0)
