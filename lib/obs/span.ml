type t = {
  name : string;
  cat : string;
  start_ns : int;
  dur_ns : int;
  depth : int;
  domain : int;
  args : (string * Json.t) list;
}

let capacity = 500_000
let mutex = Mutex.create ()
let sink : t list ref = ref [] (* newest first *)
let buffered = ref 0
let dropped_count = ref 0

(* Nesting depth is a per-domain notion: spans opened on different
   domains are independent stacks (one trace lane per domain), so the
   counter lives in domain-local storage rather than the shared sink. *)
let open_depth = Domain.DLS.new_key (fun () -> ref 0)

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let with_span ?(cat = "ivm") ?args name f =
  if not (Control.enabled ()) then f ()
  else begin
    let depth_ref = Domain.DLS.get open_depth in
    let depth = !depth_ref in
    incr depth_ref;
    let domain = (Domain.self () :> int) in
    let start = Clock.now_ns () in
    let finish () =
      let dur = Clock.now_ns () - start in
      let args =
        match args with
        | None -> []
        | Some thunk -> ( try thunk () with _ -> [])
      in
      let span = { name; cat; start_ns = start; dur_ns = dur; depth; domain; args } in
      decr depth_ref;
      let was_dropped =
        locked (fun () ->
            if !buffered >= capacity then begin
              incr dropped_count;
              true
            end
            else begin
              sink := span :: !sink;
              incr buffered;
              false
            end)
      in
      (* The counter makes the loss visible on a metrics scrape; it is
         bumped outside the span mutex (Metrics has its own lock). *)
      if was_dropped then Metrics.add "ivm_obs_spans_dropped_total" 1
    in
    match f () with
    | v ->
      finish ();
      v
    | exception exn ->
      finish ();
      raise exn
  end

let drain () =
  locked (fun () ->
      let spans = List.rev !sink in
      sink := [];
      buffered := 0;
      spans)

let length () = locked (fun () -> !buffered)
let dropped () = locked (fun () -> !dropped_count)

let reset () =
  let depth_ref = Domain.DLS.get open_depth in
  depth_ref := 0;
  locked (fun () ->
      sink := [];
      buffered := 0;
      dropped_count := 0)
