(* Command-line interface to the library: inspect paper artifacts, run
   randomized self-checks, and explore maintenance interactively on the
   built-in scenarios. *)

open Cmdliner
open Relalg
module View = Ivm.View
module Maintenance = Ivm.Maintenance
module Manager = Ivm.Manager
module Rng = Workload.Rng
module Generate = Workload.Generate
module Scenario = Workload.Scenario

(* ------------------------------------------------------------------ *)
(* ivm-cli example                                                     *)
(* ------------------------------------------------------------------ *)

let run_example () =
  let db = Database.create () in
  Database.register db "R"
    (Relation.of_tuples
       (Schema.make [ ("A", Value.Int_ty); ("B", Value.Int_ty) ])
       [ Tuple.of_ints [ 1; 2 ]; Tuple.of_ints [ 5; 10 ] ]);
  Database.register db "S"
    (Relation.of_tuples
       (Schema.make [ ("C", Value.Int_ty); ("D", Value.Int_ty) ])
       [ Tuple.of_ints [ 2; 10 ]; Tuple.of_ints [ 10; 20 ]; Tuple.of_ints [ 12; 15 ] ]);
  let open Condition.Formula.Dsl in
  let view =
    View.define ~name:"u" ~db
      Query.Expr.(
        project [ "A"; "D" ]
          (select
             ((v "A" <% i 10) &&% (v "C" >% i 5) &&% (v "B" =% v "C"))
             (product (base "R") (base "S"))))
  in
  Printf.printf "view definition:\n  %s\n\n"
    (Format.asprintf "%a" Query.Spj.pp (View.spj view));
  Printf.printf "materialization:\n%s\n\n"
    (Relation.to_ascii (View.contents view));
  let screen = View.screen_for view ~alias:"R" in
  List.iter
    (fun (a, b) ->
      Printf.printf "insert (%d,%d) into R: %s\n" a b
        (if Ivm.Irrelevance.relevant screen (Tuple.of_ints [ a; b ]) then
           "relevant"
         else "irrelevant"))
    [ (9, 10); (11, 10) ];
  ignore
    (Maintenance.process ~views:[ view ] ~db
       [ Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]) ]);
  Printf.printf "\nafter inserting (9,10):\n%s\n"
    (Relation.to_ascii (View.contents view));
  0

(* ------------------------------------------------------------------ *)
(* ivm-cli check                                                       *)
(* ------------------------------------------------------------------ *)

let run_check seed rounds transactions verbose =
  let rng = Rng.make seed in
  let failures = ref 0 in
  for round = 1 to rounds do
    let scenario = Scenario.pair ~rng ~size_r:200 ~size_s:200 ~key_range:20 in
    let db = scenario.Scenario.db in
    let open Condition.Formula.Dsl in
    let exprs =
      [
        Query.Expr.(join (base "R") (base "S"));
        Query.Expr.(project [ "B" ] (base "R"));
        Query.Expr.(
          project [ "A"; "C" ]
            (select ((v "C" <% i 1500) ||% (v "A" >% i 100))
               (join (base "R") (base "S"))));
      ]
    in
    let views =
      List.mapi
        (fun k expr ->
          View.define ~name:(Printf.sprintf "v%d" k) ~db expr)
        exprs
    in
    for _ = 1 to transactions do
      let txn =
        Generate.mixed_transaction rng db
          [
            ("R", Scenario.columns_of scenario "R", Rng.int rng 4, Rng.int rng 4);
            ("S", Scenario.columns_of scenario "S", Rng.int rng 4, Rng.int rng 4);
          ]
      in
      ignore (Maintenance.process ~views ~db txn)
    done;
    List.iter
      (fun view ->
        if not (View.consistent view db) then begin
          incr failures;
          Printf.printf "round %d: view %s INCONSISTENT\n" round (View.name view)
        end
        else if verbose then
          Printf.printf "round %d: view %s ok (%d tuples)\n" round
            (View.name view)
            (Relation.cardinal (View.contents view)))
      views
  done;
  if !failures = 0 then begin
    Printf.printf
      "self-check passed: %d rounds x %d transactions x 3 views, all \
       consistent with full re-evaluation\n"
      rounds transactions;
    0
  end
  else begin
    Printf.printf "%d inconsistencies found\n" !failures;
    1
  end

(* ------------------------------------------------------------------ *)
(* ivm-cli stream                                                      *)
(* ------------------------------------------------------------------ *)

(* The deterministic durable workload shared by `stream --wal` and
   `recover`: the same seed rebuilds the same initial database and view,
   so a recovery in a fresh process starts from the state the logged
   records expect. *)
let durability_config ~wal ~fsync_every ~checkpoint_every =
  Option.map
    (fun dir ->
      let fsync =
        if fsync_every <= 0 then Durability.Config.Never
        else if fsync_every = 1 then Durability.Config.Always
        else Durability.Config.Every fsync_every
      in
      Durability.Config.make ~fsync ~checkpoint_every dir)
    wal

let stream_manager ~seed ~screen ~domains ~durability =
  let rng = Rng.make seed in
  let scenario = Scenario.orders ~rng ~customers:200 ~orders:5_000 in
  let db = scenario.Scenario.db in
  let mgr = Manager.create ?domains ?durability db in
  let open Condition.Formula.Dsl in
  let options = { Maintenance.default_options with screen } in
  ignore
    (Manager.define_view mgr ~name:"dashboard" ~options
       Query.Expr.(
         project
           [ "oid"; "cid"; "amount" ]
           (select
              ((v "amount" >% i 900) &&% (v "region" =% s "north"))
              (join (base "orders") (base "customers")))));
  (mgr, scenario, rng)

let print_recovery (info : Manager.recovery) =
  Printf.printf
    "recovered: checkpoint seq %d (lsn %d), %d records replayed, now at \
     seq %d (lsn %d)%s\n"
    info.Manager.checkpoint_seq info.Manager.checkpoint_lsn
    info.Manager.records_replayed info.Manager.last_seq info.Manager.last_lsn
    (if info.Manager.torn_bytes > 0 then
       Printf.sprintf "; %d torn bytes truncated" info.Manager.torn_bytes
     else "")

let run_stream seed transactions batch screen domains wal fsync_every
    checkpoint_every =
  let durability = durability_config ~wal ~fsync_every ~checkpoint_every in
  match stream_manager ~seed ~screen ~domains ~durability with
  | exception Durability.Incompatible_wal msg ->
    Printf.eprintf "incompatible wal: %s\n" msg;
    1
  | mgr, scenario, rng ->
  let db = Manager.database mgr in
  (* A WAL directory left by an earlier run holds durable state; recover
     uniformly (a fresh directory recovers trivially) so this run's
     commits append after it. *)
  if Option.is_some durability then print_recovery (Manager.recover mgr);
  let total_time = ref 0.0 in
  let screened = ref 0 and kept = ref 0 in
  for _ = 1 to transactions do
    let txn =
      Generate.transaction rng db "orders"
        ~columns:(Scenario.columns_of scenario "orders")
        ~inserts:(batch / 2)
        ~deletes:(batch - (batch / 2))
    in
    let t0 = Sys.time () in
    let reports = Manager.commit mgr txn in
    total_time := !total_time +. Sys.time () -. t0;
    List.iter
      (fun r ->
        screened := !screened + r.Maintenance.screened_out;
        kept := !kept + r.Maintenance.screened_kept)
      reports
  done;
  Printf.printf
    "%d transactions (batch %d) in %.1f ms; screening %s: %d/%d tuples \
     proven irrelevant; consistent: %b\n"
    transactions batch (!total_time *. 1000.0)
    (if screen then "on" else "off")
    !screened (!screened + !kept)
    (Manager.all_consistent mgr);
  0

(* ------------------------------------------------------------------ *)
(* ivm-cli recover                                                     *)
(* ------------------------------------------------------------------ *)

let run_recover seed screen domains wal fsync_every checkpoint_every =
  let durability =
    durability_config ~wal:(Some wal) ~fsync_every ~checkpoint_every
  in
  (* [Manager.create] already opens the log, so a foreign or corrupt
     file surfaces there, not just in [recover]. *)
  match
    let mgr, _scenario, _rng =
      stream_manager ~seed ~screen ~domains ~durability
    in
    let info = Manager.recover mgr in
    (info, Manager.all_consistent mgr)
  with
  | info, ok ->
    print_recovery info;
    Printf.printf "consistent: %b\n" ok;
    if ok then 0 else 1
  | exception Durability.Incompatible_wal msg ->
    Printf.eprintf "incompatible wal: %s\n" msg;
    1
  | exception Durability.Corrupt msg ->
    Printf.eprintf "corrupt durable state: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* ivm-cli query                                                       *)
(* ------------------------------------------------------------------ *)

let run_query dir statement materialize =
  match
    let db = Csv.load_database ~dir in
    let lookup name = Relation.schema (Database.find db name) in
    let expr = Query.Parser.view ~lookup statement in
    if materialize then begin
      (* Register it as a maintained view and show the compiled form. *)
      let view = View.define ~name:"query" ~db expr in
      Printf.printf "compiled: %s\n\n"
        (Format.asprintf "%a" Query.Spj.pp (View.spj view));
      Printf.printf "%s\n" (Relation.to_ascii (View.contents view))
    end
    else Printf.printf "%s\n" (Relation.to_ascii (Query.Eval.eval db expr))
  with
  | () -> 0
  | exception Query.Parser.Parse_error message ->
    Printf.eprintf "parse error: %s\n" message;
    1
  | exception Query.Spj.Compile_error message ->
    Printf.eprintf "compile error: %s\n" message;
    1
  | exception Csv.Parse_error message ->
    Printf.eprintf "csv error: %s\n" message;
    1
  | exception Sys_error message ->
    Printf.eprintf "%s\n" message;
    1

(* ------------------------------------------------------------------ *)
(* ivm-cli lint                                                        *)
(* ------------------------------------------------------------------ *)

(* Built-in view definitions covering the paper's worked examples and the
   workload scenarios the other subcommands exercise; `lint
   --all-scenarios` doubles as a self-test of the analyzer and a CI gate
   (tools/check.sh). *)
let builtin_scenarios () =
  let open Condition.Formula.Dsl in
  let lookup_of db name = Relation.schema (Database.find db name) in
  let example_4_1 () =
    let db = Database.create () in
    Database.register db "R"
      (Relation.of_tuples
         (Schema.make [ ("A", Value.Int_ty); ("B", Value.Int_ty) ])
         []);
    Database.register db "S"
      (Relation.of_tuples
         (Schema.make [ ("C", Value.Int_ty); ("D", Value.Int_ty) ])
         []);
    db
  in
  let rng = Rng.make 42 in
  let pair = Scenario.pair ~rng ~size_r:10 ~size_s:10 ~key_range:5 in
  let orders = Scenario.orders ~rng ~customers:10 ~orders:20 in
  [
    ( "example-4.1",
      lookup_of (example_4_1 ()),
      Query.Expr.(
        project [ "A"; "D" ]
          (select
             ((v "A" <% i 10) &&% (v "C" >% i 5) &&% (v "B" =% v "C"))
             (product (base "R") (base "S")))),
      [] );
    ( "example-5.1",
      lookup_of (example_4_1 ()),
      Query.Expr.(project [ "B" ] (base "R")),
      [ ("R", [ "A" ]) ] );
    ( "pair-join",
      lookup_of pair.Scenario.db,
      Query.Expr.(join (base "R") (base "S")),
      [] );
    ( "pair-project",
      lookup_of pair.Scenario.db,
      Query.Expr.(project [ "B" ] (base "R")),
      [] );
    ( "pair-filtered-join",
      lookup_of pair.Scenario.db,
      Query.Expr.(
        project [ "A"; "C" ]
          (select ((v "C" <% i 1500) ||% (v "A" >% i 100))
             (join (base "R") (base "S")))),
      [] );
    ( "orders-dashboard",
      lookup_of orders.Scenario.db,
      Query.Expr.(
        project
          [ "oid"; "cid"; "amount" ]
          (select
             ((v "amount" >% i 900) &&% (v "region" =% s "north"))
             (join (base "orders") (base "customers")))),
      [ ("orders", [ "oid" ]); ("customers", [ "cid" ]) ] );
  ]

let parse_key_spec spec =
  (* "R:A,B" -> ("R", ["A"; "B"]) *)
  match String.index_opt spec ':' with
  | None ->
    Printf.eprintf "bad --key %S (expected RELATION:ATTR[,ATTR...])\n" spec;
    exit 2
  | Some i ->
    let relation = String.sub spec 0 i in
    let attrs =
      String.split_on_char ','
        (String.sub spec (i + 1) (String.length spec - i - 1))
    in
    let attrs = List.filter (fun a -> a <> "") (List.map String.trim attrs) in
    if relation = "" || attrs = [] then begin
      Printf.eprintf "bad --key %S (expected RELATION:ATTR[,ATTR...])\n" spec;
      exit 2
    end;
    (relation, attrs)

let lint_one ~quiet ~code (label, lookup, expr, keys) =
  let diagnostics = Analysis.Analyzer.run_expr ~keys ~lookup expr in
  let failed = Analysis.Diagnostic.has_errors diagnostics in
  let shown =
    match code with
    | None -> diagnostics
    | Some query -> Analysis.Diagnostic.with_code query diagnostics
  in
  if shown = [] then begin
    if not quiet then Printf.printf "== %s ==\nok\n" label
  end
  else
    Printf.printf "== %s ==\n%s\n" label
      (Format.asprintf "%a"
         (fun ppf ds -> Analysis.Diagnostic.pp_report ppf ds)
         shown);
  failed

let severity_name = function
  | Analysis.Diagnostic.Error -> "error"
  | Analysis.Diagnostic.Warning -> "warning"
  | Analysis.Diagnostic.Hint -> "hint"

(* Machine-readable report: one object per definition, stable field
   names, and a summary block — tools/check.sh feeds this to
   tools/validate_snapshot.exe as a CI gate.  Exit code contract is the
   same as the human mode: 0 clean, 1 any Error-level diagnostic, 2
   usage problems. *)
let lint_json ~code targets =
  let definition (label, lookup, expr, keys) =
    let diagnostics = Analysis.Analyzer.run_expr ~keys ~lookup expr in
    let shown =
      match code with
      | None -> diagnostics
      | Some query -> Analysis.Diagnostic.with_code query diagnostics
    in
    let diag (d : Analysis.Diagnostic.t) =
      let opt = function None -> Obs.Json.Null | Some s -> Obs.Json.Str s in
      Obs.Json.Obj
        [
          ("code", Obs.Json.Str d.Analysis.Diagnostic.code);
          ("severity", Obs.Json.Str (severity_name d.Analysis.Diagnostic.severity));
          ("message", Obs.Json.Str d.Analysis.Diagnostic.message);
          ("context", opt d.Analysis.Diagnostic.context);
          ("paper", opt d.Analysis.Diagnostic.paper);
        ]
    in
    ( Obs.Json.Obj
        [
          ("label", Obs.Json.Str label);
          ("diagnostics", Obs.Json.List (List.map diag shown));
        ],
      diagnostics )
  in
  let entries = List.map definition targets in
  let all = List.concat_map snd entries in
  let count severity =
    List.length
      (List.filter
         (fun (d : Analysis.Diagnostic.t) ->
           d.Analysis.Diagnostic.severity = severity)
         all)
  in
  let errors = count Analysis.Diagnostic.Error in
  let doc =
    Obs.Json.Obj
      [
        ("version", Obs.Json.Int 1);
        ("definitions", Obs.Json.List (List.map fst entries));
        ( "summary",
          Obs.Json.Obj
            [
              ("definitions", Obs.Json.Int (List.length targets));
              ("errors", Obs.Json.Int errors);
              ("warnings", Obs.Json.Int (count Analysis.Diagnostic.Warning));
              ("hints", Obs.Json.Int (count Analysis.Diagnostic.Hint));
            ] );
      ]
  in
  print_endline (Obs.Json.to_string doc);
  if errors > 0 then 1 else 0

let run_lint all_scenarios dir file keys quiet json code statements =
  let keys = List.map parse_key_spec keys in
  let from_statements =
    match statements, file with
    | [], None -> []
    | _ ->
      let dir =
        match dir with
        | Some dir -> dir
        | None ->
          Printf.eprintf
            "lint: statements need --dir DIR to resolve base schemas\n";
          exit 2
      in
      let db = Csv.load_database ~dir in
      let lookup name = Relation.schema (Database.find db name) in
      let file_statements =
        match file with
        | None -> []
        | Some path ->
          let ic = open_in path in
          let rec lines acc =
            match input_line ic with
            | line -> lines (line :: acc)
            | exception End_of_file ->
              close_in ic;
              List.rev acc
          in
          List.filter
            (fun line ->
              let line = String.trim line in
              line <> ""
              && (not (String.length line >= 1 && line.[0] = '#'))
              && not (String.length line >= 2 && String.sub line 0 2 = "--"))
            (lines [])
      in
      List.mapi
        (fun i statement ->
          let label = Printf.sprintf "statement %d: %s" (i + 1) statement in
          match Query.Parser.view ~lookup statement with
          | expr -> (label, lookup, expr, keys)
          | exception Query.Parser.Parse_error message ->
            Printf.eprintf "parse error in %s: %s\n" label message;
            exit 2)
        (statements @ file_statements)
  in
  let targets =
    (if all_scenarios then
       List.map
         (fun (label, lookup, expr, ks) -> (label, lookup, expr, ks @ keys))
         (builtin_scenarios ())
     else [])
    @ from_statements
  in
  if targets = [] then begin
    Printf.eprintf
      "lint: nothing to lint (pass statements, --file or --all-scenarios)\n";
    exit 2
  end;
  if json then lint_json ~code targets
  else begin
    let failures =
      List.filter Fun.id (List.map (lint_one ~quiet ~code) targets)
    in
    if failures = [] then begin
      if not quiet then
        Printf.printf "lint: %d definition(s), no errors\n"
          (List.length targets);
      0
    end
    else begin
      Printf.printf "lint: %d of %d definition(s) carry errors\n"
        (List.length failures) (List.length targets);
      1
    end
  end

(* ------------------------------------------------------------------ *)
(* ivm-cli fuzz                                                        *)
(* ------------------------------------------------------------------ *)

let run_crash_fuzz ~seed ~streams ~transactions ~domains ~fault_rate
    ~aggregates ~quiet =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ivm-crash-%d" seed)
  in
  let progress k =
    if (not quiet) && k mod 5 = 0 then begin
      Printf.printf "crash fuzz: %d/%d streams clean\n" k streams;
      flush stdout
    end
  in
  let outcome =
    Oracle.Crash.fuzz ~progress ~fault_rate ~aggregates ~dir ~seed ~streams
      ~transactions ~domains ()
  in
  match outcome.Oracle.Crash.failure with
  | None ->
    Printf.printf
      "crash fuzz passed: %d streams x %d transactions at domains=%d, seed \
       %d; %d kills (%d with torn tails), %d WAL records replayed; every \
       recovery was bit-identical to the durable frontier and idempotent\n"
      outcome.Oracle.Crash.streams_run transactions domains seed
      outcome.Oracle.Crash.crashes outcome.Oracle.Crash.torn
      outcome.Oracle.Crash.replayed;
    0
  | Some (stream, divergence) ->
    Printf.printf "crash fuzz FAILED on stream %d of %d (seed %d):\n\n"
      outcome.Oracle.Crash.streams_run streams stream.Oracle.Stream.seed;
    Format.printf "%a@." Oracle.Harness.pp_divergence divergence;
    Printf.printf
      "\nreplay: ivm-cli fuzz --crash --seed %d --streams 1 --transactions \
       %d --domains %d --fault-rate %g%s\n"
      stream.Oracle.Stream.seed transactions domains fault_rate
      (if aggregates then " --aggregates" else "");
    1

let run_fuzz seed streams transactions domains fault_rate aggregates crash
    quiet =
  (* Fault-injected fuzzing aborts thousands of commits on purpose; each
     abort would rewrite the same post-mortem dump over and over. *)
  Resilience.Flight.set_dir None;
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> Option.value ~default:1 (Exec.Pool.env_domains ())
  in
  if crash then
    let fault_rate = if fault_rate > 0.0 then fault_rate else 0.05 in
    run_crash_fuzz ~seed ~streams ~transactions ~domains ~fault_rate
      ~aggregates ~quiet
  else
  let progress k =
    if (not quiet) && k mod 10 = 0 then begin
      Printf.printf "fuzz: %d/%d streams clean\n" k streams;
      flush stdout
    end
  in
  let outcome =
    Oracle.Fuzz.run ~progress ~fault_rate ~aggregates ~seed ~streams
      ~transactions ~domains ()
  in
  let print_fault_summary () =
    if fault_rate > 0.0 then begin
      let s = outcome.Oracle.Fuzz.stats in
      Printf.printf
        "fault injection (rate %g): %d commits, %d clean aborts, %d \
         quarantines, %d heals, %d faults injected\n"
        fault_rate s.Oracle.Harness.committed s.Oracle.Harness.aborted
        s.Oracle.Harness.quarantined s.Oracle.Harness.healed
        s.Oracle.Harness.faults
    end
  in
  match outcome.Oracle.Fuzz.failure with
  | None ->
    Printf.printf
      "fuzz passed: %d streams x %d transactions (%d committed) at \
       domains=%d, seed %d; engine always agreed with the naive recompute \
       oracle\n"
      outcome.Oracle.Fuzz.streams_run transactions
      outcome.Oracle.Fuzz.transactions_run domains seed;
    print_fault_summary ();
    0
  | Some counterexample ->
    Printf.printf "fuzz FAILED on stream %d of %d (seed %d):\n\n"
      outcome.Oracle.Fuzz.streams_run streams
      (seed + outcome.Oracle.Fuzz.streams_run - 1);
    Format.printf "%a@." Oracle.Fuzz.pp_counterexample counterexample;
    print_fault_summary ();
    Printf.printf
      "\nreplay: ivm-cli fuzz --seed %d --streams 1 --transactions %d \
       --domains %d%s%s\n"
      (seed + outcome.Oracle.Fuzz.streams_run - 1)
      transactions domains
      (if fault_rate > 0.0 then Printf.sprintf " --fault-rate %g" fault_rate
       else "")
      (if aggregates then " --aggregates" else "");
    1

(* ------------------------------------------------------------------ *)
(* ivm-cli stats / trace                                               *)
(* ------------------------------------------------------------------ *)

(* Built-in workloads for the telemetry subcommands.  Each runs a Manager
   end to end (immediate adaptive views, and for "orders" a deferred view
   drained every 10 commits) so a trace shows every Algorithm 5.1 phase:
   net -> screen -> row evaluations -> apply. *)
let obs_scenario_names = [ "orders"; "pair"; "example" ]

let run_obs_scenario ~scenario ~seed ~transactions ~batch ~domains =
  let rng = Rng.make seed in
  let adaptive =
    { Maintenance.default_options with strategy = Maintenance.Adaptive }
  in
  let open Condition.Formula.Dsl in
  match scenario with
  | "orders" ->
    let sc = Scenario.orders ~rng ~customers:200 ~orders:5_000 in
    let db = sc.Scenario.db in
    let mgr = Manager.create ?domains db in
    ignore
      (Manager.define_view mgr ~name:"dashboard" ~options:adaptive
         Query.Expr.(
           project
             [ "oid"; "cid"; "amount" ]
             (select
                ((v "amount" >% i 900) &&% (v "region" =% s "north"))
                (join (base "orders") (base "customers")))));
    ignore
      (Manager.define_view mgr ~name:"audit" ~mode:Manager.Deferred
         Query.Expr.(
           project [ "oid"; "amount" ] (select (v "amount" >% i 990) (base "orders"))));
    for t = 1 to transactions do
      let txn =
        Generate.transaction rng db "orders"
          ~columns:(Scenario.columns_of sc "orders")
          ~inserts:(batch - (batch / 2))
          ~deletes:(batch / 2)
      in
      ignore (Manager.commit mgr txn);
      if t mod 10 = 0 then ignore (Manager.refresh mgr "audit")
    done;
    ignore (Manager.refresh_all mgr);
    mgr
  | "pair" ->
    let sc = Scenario.pair ~rng ~size_r:500 ~size_s:500 ~key_range:50 in
    let db = sc.Scenario.db in
    let mgr = Manager.create ?domains db in
    ignore
      (Manager.define_view mgr ~name:"joined" ~options:adaptive
         Query.Expr.(join (base "R") (base "S")));
    ignore
      (Manager.define_view mgr ~name:"filtered" ~options:adaptive
         Query.Expr.(
           project [ "A"; "C" ]
             (select ((v "C" <% i 1500) ||% (v "A" >% i 100))
                (join (base "R") (base "S")))));
    for _ = 1 to transactions do
      let txn =
        Generate.mixed_transaction rng db
          [
            ("R", Scenario.columns_of sc "R", batch / 2, batch / 2);
            ("S", Scenario.columns_of sc "S", batch / 2, batch / 2);
          ]
      in
      ignore (Manager.commit mgr txn)
    done;
    mgr
  | "example" ->
    (* Example 4.1: one relevant and one provably irrelevant insert per
       commit, so screening shows up in spans and metrics. *)
    let db = Database.create () in
    Database.register db "R"
      (Relation.of_tuples
         (Schema.make [ ("A", Value.Int_ty); ("B", Value.Int_ty) ])
         [ Tuple.of_ints [ 1; 2 ]; Tuple.of_ints [ 5; 10 ] ]);
    Database.register db "S"
      (Relation.of_tuples
         (Schema.make [ ("C", Value.Int_ty); ("D", Value.Int_ty) ])
         [ Tuple.of_ints [ 2; 10 ]; Tuple.of_ints [ 10; 20 ] ]);
    let mgr = Manager.create ?domains db in
    (* Forced differential: on a database this small the adaptive advisor
       would always recompute, hiding the screen/row phases the trace is
       meant to show.  The advisor's prediction is recorded either way. *)
    ignore
      (Manager.define_view mgr ~name:"u"
         Query.Expr.(
           project [ "A"; "D" ]
             (select
                ((v "A" <% i 10) &&% (v "C" >% i 5) &&% (v "B" =% v "C"))
                (product (base "R") (base "S")))));
    for t = 1 to transactions do
      ignore
        (Manager.commit mgr
           [
             Transaction.insert "R" (Tuple.of_ints [ 9; 100 + t ]);
             Transaction.insert "R" (Tuple.of_ints [ 11; 100 + t ]);
           ])
    done;
    mgr
  | other ->
    Printf.eprintf "unknown scenario %S; available: %s\n" other
      (String.concat " " obs_scenario_names);
    exit 2

let setup_obs no_obs =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Ivm.Advisor.reset_samples ();
  if not no_obs then Obs.Control.enable ()

let run_stats scenario seed transactions batch domains json out no_obs =
  setup_obs no_obs;
  let mgr = run_obs_scenario ~scenario ~seed ~transactions ~batch ~domains in
  Obs.Control.disable ();
  if json then begin
    let doc =
      Obs.Json.Obj
        [
          ("scenario", Obs.Json.Str scenario);
          ("transactions", Obs.Json.Int transactions);
          ("metrics", Obs.Metrics.snapshot ());
          ("advisor_calibration", Ivm.Advisor.calibration_json ());
          ("advisor_pairs", Ivm.Advisor.samples_json ~limit:50 ());
        ]
    in
    match out with
    | None -> print_endline (Obs.Json.to_string doc)
    | Some path ->
      Obs.Json.to_file path doc;
      Printf.printf "wrote %s\n" path
  end
  else begin
    List.iter
      (fun name ->
        Format.printf "%s: %a@." name Manager.pp_stats (Manager.stats mgr name))
      (Manager.view_names mgr);
    Format.printf "advisor: %a@." Ivm.Advisor.pp_calibration
      (Ivm.Advisor.calibrate ());
    if not no_obs then begin
      Printf.printf "\nmetrics:\n";
      Format.printf "%a@?" Obs.Summary.pp_metrics ()
    end
  end;
  0

let run_trace scenario seed transactions batch domains out format no_obs =
  setup_obs no_obs;
  ignore (run_obs_scenario ~scenario ~seed ~transactions ~batch ~domains);
  Obs.Control.disable ();
  let dropped = Obs.Span.dropped () in
  if dropped > 0 then
    Printf.eprintf
      "warning: span sink overflowed, %d spans dropped — the trace is \
       incomplete; trace fewer transactions or a smaller batch\n"
      dropped;
  let spans = Obs.Span.drain () in
  (match format with
  | "summary" -> Format.printf "%a@?" Obs.Summary.pp_spans spans
  | _ ->
    Obs.Trace_export.write_file ~path:out
      ~meta:
        [
          ("scenario", Obs.Json.Str scenario);
          ("transactions", Obs.Json.Int transactions);
          ("seed", Obs.Json.Int seed);
        ]
      spans;
    Printf.printf "wrote %s (%d spans%s)\n" out (List.length spans)
      (if no_obs then ", telemetry disabled" else ""));
  0

(* ------------------------------------------------------------------ *)
(* ivm-cli explain / metrics                                           *)
(* ------------------------------------------------------------------ *)

let explain_verdict screen label tuple =
  match Ivm.Irrelevance.explain screen tuple with
  | None -> Printf.printf "  %s: relevant (no Theorem 4.1 refutation)\n" label
  | Some rule ->
    Printf.printf "  %s: irrelevant [%s]\n      %s\n" label
      (Ivm.Irrelevance.rule_id rule)
      (Ivm.Irrelevance.rule_description rule)

(* The paper demo behind `explain`: Examples 4.1, 5.1 and 5.4 run end to
   end, each on its own manager, so the provenance ring afterwards holds
   one commit per maintenance situation the paper discusses — screened
   updates (with the rule that fired), a keyed self-maintained delete,
   and a certificate miss falling back to differential. *)
let run_paper_demo ~domains ~verdicts =
  let open Condition.Formula.Dsl in
  (* Example 4.1: A < 10 && C > 5 && B = C over R x S.  Forced
     differential (the advisor would recompute a database this small and
     hide the screening phase the demo is about); its three-arm
     prediction is recorded in the provenance either way. *)
  let db = Database.create () in
  Database.register db "R"
    (Relation.of_tuples
       (Schema.make [ ("A", Value.Int_ty); ("B", Value.Int_ty) ])
       [ Tuple.of_ints [ 1; 2 ]; Tuple.of_ints [ 5; 10 ] ]);
  Database.register db "S"
    (Relation.of_tuples
       (Schema.make [ ("C", Value.Int_ty); ("D", Value.Int_ty) ])
       [ Tuple.of_ints [ 2; 10 ]; Tuple.of_ints [ 10; 20 ] ]);
  let mgr = Manager.create ?domains db in
  let view_4_1 =
    Manager.define_view mgr ~name:"example_4_1"
      Query.Expr.(
        project [ "A"; "D" ]
          (select
             ((v "A" <% i 10) &&% (v "C" >% i 5) &&% (v "B" =% v "C"))
             (product (base "R") (base "S"))))
  in
  if verdicts then begin
    Printf.printf
      "Example 4.1: u = project[A,D] select[A<10 && C>5 && B=C] (R x S)\n\
       per-tuple Theorem 4.1 verdicts for updates to R:\n";
    let screen = View.screen_for view_4_1 ~alias:"R" in
    explain_verdict screen "insert R(9,10)" (Tuple.of_ints [ 9; 10 ]);
    explain_verdict screen "insert R(11,10)" (Tuple.of_ints [ 11; 10 ]);
    explain_verdict screen "insert R(9,3)" (Tuple.of_ints [ 9; 3 ]);
    print_newline ()
  end;
  ignore
    (Manager.commit mgr
       [
         Transaction.insert "R" (Tuple.of_ints [ 9; 10 ]);
         Transaction.insert "R" (Tuple.of_ints [ 11; 10 ]);
         Transaction.insert "R" (Tuple.of_ints [ 9; 3 ]);
       ]);
  (* Example 5.1: v = project[B](R), key R:[A], r = {(1,10),(2,10),(3,20)}.
     Deleting R(1,10) drains through the key with zero base reads; the
     record shows the self_maintain strategy and the keyed-drain rule. *)
  let db = Database.create () in
  Database.register db "R"
    (Relation.of_tuples
       (Schema.make [ ("A", Value.Int_ty); ("B", Value.Int_ty) ])
       [ Tuple.of_ints [ 1; 10 ]; Tuple.of_ints [ 2; 10 ]; Tuple.of_ints [ 3; 20 ] ]);
  let mgr = Manager.create ?domains db in
  ignore
    (Manager.define_view mgr ~name:"example_5_1"
       ~keys:[ ("R", [ "A" ]) ]
       ~options:
         {
           Maintenance.default_options with
           strategy = Maintenance.Self_maintain;
         }
       Query.Expr.(project [ "B" ] (base "R")));
  ignore (Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 1; 10 ]) ]);
  (* Example 5.4: R(A,B) join S(B,C) under keys.  The certificate covers
     deletions only; the insert commit records the fallback reason and
     runs differentially. *)
  let db = Database.create () in
  Database.register db "R"
    (Relation.of_tuples
       (Schema.make [ ("A", Value.Int_ty); ("B", Value.Int_ty) ])
       [ Tuple.of_ints [ 1; 10 ]; Tuple.of_ints [ 2; 20 ] ]);
  Database.register db "S"
    (Relation.of_tuples
       (Schema.make [ ("B", Value.Int_ty); ("C", Value.Int_ty) ])
       [ Tuple.of_ints [ 10; 100 ]; Tuple.of_ints [ 20; 200 ] ]);
  let mgr = Manager.create ?domains db in
  ignore
    (Manager.define_view mgr ~name:"example_5_4"
       ~keys:[ ("R", [ "A" ]); ("S", [ "B" ]) ]
       ~options:
         {
           Maintenance.default_options with
           strategy = Maintenance.Self_maintain;
         }
       Query.Expr.(join (base "R") (base "S")));
  ignore (Manager.commit mgr [ Transaction.delete "R" (Tuple.of_ints [ 1; 10 ]) ]);
  ignore (Manager.commit mgr [ Transaction.insert "R" (Tuple.of_ints [ 3; 20 ]) ])

let explain_scenario_names = "paper" :: obs_scenario_names

let run_explain scenario seed transactions batch domains json last =
  setup_obs false;
  Obs.Provenance.reset ();
  (match scenario with
  | "paper" -> run_paper_demo ~domains ~verdicts:(not json)
  | s -> ignore (run_obs_scenario ~scenario:s ~seed ~transactions ~batch ~domains));
  Obs.Control.disable ();
  let records = Obs.Provenance.recent () in
  let records =
    let n = List.length records in
    if n <= last then records
    else List.filteri (fun i _ -> i >= n - last) records
  in
  if json then
    print_endline
      (Obs.Json.to_string
         (Obs.Json.List (List.map Obs.Provenance.commit_to_json records)))
  else if records = [] then
    print_endline "no provenance records (recorder disabled?)"
  else
    List.iter
      (fun c -> Format.printf "%a@." Obs.Provenance.pp_commit c)
      records;
  0

let run_metrics scenario seed transactions batch domains out =
  setup_obs false;
  ignore (run_obs_scenario ~scenario ~seed ~transactions ~batch ~domains);
  Obs.Control.disable ();
  let text = Obs.Metrics.to_openmetrics () in
  (match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s\n" path);
  0

(* ------------------------------------------------------------------ *)
(* command definitions                                                 *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Maintain views on a pool of $(docv) domains (1 = sequential).  \
           Defaults to the $(b,IVM_DOMAINS) environment variable, or 1.  \
           Results are identical at every setting; only timing changes.")

let example_cmd =
  Cmd.v
    (Cmd.info "example"
       ~doc:"Walk through the paper's Example 4.1 end to end.")
    Term.(const run_example $ const ())

let check_cmd =
  let rounds =
    Arg.(
      value & opt int 10
      & info [ "rounds" ] ~docv:"N" ~doc:"Independent random databases.")
  in
  let transactions =
    Arg.(
      value & opt int 20
      & info [ "transactions" ] ~docv:"N" ~doc:"Transactions per round.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print per-view results.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Randomized self-check: differential maintenance must equal full \
          re-evaluation.")
    Term.(const run_check $ seed_arg $ rounds $ transactions $ verbose)

let screen_arg =
  Arg.(
    value & opt bool true
    & info [ "screen" ] ~docv:"BOOL" ~doc:"Enable irrelevance screening.")

let fsync_every_arg =
  Arg.(
    value & opt int 1
    & info [ "fsync-every" ] ~docv:"N"
        ~doc:
          "Group-commit cadence: fsync the WAL every $(docv) appended \
           records (1 = every commit, 0 = never, leave syncing to the OS).")

let checkpoint_every_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Snapshot the full state and truncate the WAL every $(docv) \
           records (0 = only the baseline checkpoint and recovery).")

let stream_cmd =
  let transactions =
    Arg.(
      value & opt int 100
      & info [ "transactions" ] ~docv:"N" ~doc:"Number of transactions.")
  in
  let batch =
    Arg.(
      value & opt int 10
      & info [ "batch" ] ~docv:"N" ~doc:"Updates per transaction.")
  in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:
            "Arm the durable commit pipeline: append every commit to \
             $(docv)/wal.bin and checkpoint into $(docv)/checkpoint.bin.  A \
             directory holding earlier state is recovered (and replayed \
             into the view) before the stream starts; see the $(b,recover) \
             subcommand.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"Maintain a dashboard view over a transaction stream and report \
             timing and screening statistics.")
    Term.(
      const run_stream $ seed_arg $ transactions $ batch $ screen_arg
      $ domains_arg $ wal $ fsync_every_arg $ checkpoint_every_arg)

let recover_cmd =
  let wal =
    Arg.(
      required
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:"Durability directory written by $(b,stream --wal).")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Recover the $(b,stream) workload from a durability directory: \
          rebuild the seed-deterministic initial state, restore the \
          checkpoint, replay the WAL tail through live maintenance, write a \
          fresh checkpoint, and verify every view against full \
          re-evaluation.  Exits nonzero if any recovered view is \
          inconsistent.  Use the same $(b,--seed) the stream ran with.")
    Term.(
      const run_recover $ seed_arg $ screen_arg $ domains_arg $ wal
      $ fsync_every_arg $ checkpoint_every_arg)

let query_cmd =
  let dir =
    Arg.(
      required
      & opt (some dir) None
      & info [ "dir"; "d" ] ~docv:"DIR"
          ~doc:"Directory of <relation>.csv files (see Relalg.Csv).")
  in
  let statement =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SELECT" ~doc:"A SELECT ... FROM ... [WHERE ...] query.")
  in
  let materialize =
    Arg.(
      value & flag
      & info [ "materialize"; "m" ]
          ~doc:"Compile to a maintained view and show its canonical form.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Evaluate a SQL-like query over a directory of CSV relations.")
    Term.(const run_query $ dir $ statement $ materialize)

let lint_cmd =
  let all_scenarios =
    Arg.(
      value & flag
      & info [ "all-scenarios" ]
          ~doc:
            "Lint the built-in scenario view definitions (paper examples \
             and the workloads the other subcommands use).")
  in
  let dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "dir"; "d" ] ~docv:"DIR"
          ~doc:
            "Directory of <relation>.csv files supplying base schemas for \
             SELECT statements.")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file"; "f" ] ~docv:"FILE"
          ~doc:
            "Lint SELECT statements from $(docv), one per line; blank lines \
             and lines starting with # or -- are skipped.")
  in
  let keys =
    Arg.(
      value & opt_all string []
      & info [ "key" ] ~docv:"REL:ATTRS"
          ~doc:
            "Declare a candidate key, e.g. $(b,--key orders:oid), enabling \
             the Section 5.2 key-retention hint (IVM031).  Repeatable.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Only print definitions with diagnostics.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit a machine-readable report on stdout: {version, \
             definitions: [{label, diagnostics: [{code, severity, \
             message, context, paper}]}], summary: {definitions, errors, \
             warnings, hints}}.  The summary always counts every \
             diagnostic; $(b,--code) filters only the per-definition \
             listings.")
  in
  let code =
    Arg.(
      value
      & opt (some string) None
      & info [ "code" ] ~docv:"CODE"
          ~doc:
            "Show only diagnostics matching $(docv) — an exact code \
             ($(b,IVM051)) or a band prefix ($(b,IVM05*)).  The exit code \
             still reflects all Error-level diagnostics, filtered or not.")
  in
  let statements =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SELECT" ~doc:"View definitions to lint.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze view definitions before registration: \
          unsatisfiable or redundant conditions, unscreenable sources, \
          hidden Cartesian products, projection and typing problems, and \
          self-maintainability certificates (diagnostic codes \
          IVM001-IVM059).  Exit code contract: 0 when no Error-level \
          diagnostic was found, 1 when at least one definition carries an \
          Error, 2 on usage problems (bad flags, unparseable statements, \
          nothing to lint) — making both the human and $(b,--json) modes \
          usable as CI gates.")
    Term.(
      const run_lint $ all_scenarios $ dir $ file $ keys $ quiet $ json $ code
      $ statements)

let fuzz_cmd =
  let streams =
    Arg.(
      value & opt int 25
      & info [ "streams" ] ~docv:"N"
          ~doc:"Independent random streams (stream $(i,k) uses seed + k).")
  in
  let transactions =
    Arg.(
      value & opt int 40
      & info [ "transactions" ] ~docv:"K" ~doc:"Transactions per stream.")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:
            "Arm deterministic fault injection: every maintenance phase \
             boundary raises with probability $(docv).  Streams alternate \
             between the abort and quarantine failure policies, and every \
             commit must either succeed, abort cleanly (state bit-identical \
             to the oracle's pre-commit copy), or quarantine views that \
             self-heal by end of stream.")
  in
  let aggregates =
    Arg.(
      value & flag
      & info [ "aggregates" ]
          ~doc:
            "Also draw GROUP BY views (COUNT/SUM/AVG/MIN/MAX, grouped and \
             keyless) and 1-2 dependent views stacked on random parents, so \
             every stream lockstep-checks ring-valued aggregate maintenance \
             and views over views against the oracle.")
  in
  let crash =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Crash-recovery lockstep gate: each stream runs against a \
             write-ahead-logged manager with fault injection armed over the \
             WAL kill points (append, fsync, apply, checkpoint, truncate).  \
             An injected kill simulates process death — optionally tearing \
             the last WAL record at a seed-chosen byte offset — after which \
             the harness recovers into a fresh manager and requires the \
             recovered state to be bit-identical to the durable frontier \
             (quarantined and disabled views included), recovery to be \
             idempotent, and the continued stream to agree with the oracle.  \
             Defaults $(b,--fault-rate) to 0.05 when unset.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress output.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing against the naive oracle: long randomized \
          transaction streams (mixed insert/delete batches, multi-relation \
          updates, correlated deletes, no-ops, provably irrelevant updates) \
          are replayed through the full maintenance stack and through a \
          reference engine that recomputes every view from scratch after \
          each transaction.  Materializations, multiplicity counters and \
          screening decisions must agree after every commit; the first \
          divergence is shrunk to a minimal replayable counterexample and \
          printed.  With $(b,--fault-rate), commits run under injected \
          faults and the fault-tolerance contract (clean abort or \
          quarantine-then-heal) is checked instead.  Exits nonzero on \
          divergence, making it usable as a CI gate and for soak runs.")
    Term.(
      const run_fuzz $ seed_arg $ streams $ transactions $ domains_arg
      $ fault_rate $ aggregates $ crash $ quiet)

let scenario_arg =
  Arg.(
    value
    & opt string "orders"
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Built-in workload to run: %s."
             (String.concat ", " obs_scenario_names)))

let obs_transactions_arg =
  Arg.(
    value & opt int 50
    & info [ "transactions" ] ~docv:"N" ~doc:"Committed transactions.")

let obs_batch_arg =
  Arg.(
    value & opt int 8
    & info [ "batch" ] ~docv:"N" ~doc:"Updates per transaction.")

let no_obs_arg =
  Arg.(
    value & flag
    & info [ "no-obs" ]
        ~doc:
          "Leave telemetry disabled: spans and metrics compile to \
           near-no-ops (one atomic load per instrumentation point).  \
           Timing fields in reports and manager statistics are still \
           measured.")

let stats_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the metrics registry and advisor calibration as JSON.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the JSON report to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a built-in scenario under the view manager and report \
          per-view maintenance statistics (timing included), the advisor's \
          predicted-vs-actual calibration, and the metrics registry.")
    Term.(
      const run_stats $ scenario_arg $ seed_arg $ obs_transactions_arg
      $ obs_batch_arg $ domains_arg $ json $ out $ no_obs_arg)

let trace_cmd =
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Output path of the Chrome trace_event file.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("chrome", "chrome"); ("summary", "summary") ]) "chrome"
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "$(b,chrome) writes a trace_event JSON file (open in \
             chrome://tracing, Perfetto or speedscope); $(b,summary) \
             prints an aggregated per-phase table instead.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a built-in scenario with phase-level tracing on and export \
          the spans (net, screen, per-truth-table-row eval, apply, \
          recompute, refresh) as a Chrome trace_event file.")
    Term.(
      const run_trace $ scenario_arg $ seed_arg $ obs_transactions_arg
      $ obs_batch_arg $ domains_arg $ out $ format $ no_obs_arg)

let explain_cmd =
  let scenario =
    Arg.(
      value
      & opt string "paper"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Workload to explain: %s.  $(b,paper) replays the paper's \
                Examples 4.1, 5.1 and 5.4 with per-tuple screening verdicts."
               (String.concat ", " explain_scenario_names)))
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the provenance records as a JSON array (the same schema \
             the flight recorder dumps) instead of the human tree.")
  in
  let last =
    Arg.(
      value & opt int 10
      & info [ "last" ] ~docv:"N"
          ~doc:"Show only the newest $(docv) commit records.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run a workload and print each commit's provenance record: the \
          screening verdict with the Theorem 4.1 rule that fired, the \
          advisor's three-arm predicted costs against the measured cost, \
          the strategy used (and why self-maintenance fell back when the \
          certificate did not cover the commit), rollback/quarantine \
          events, and per-phase wall times.")
    Term.(
      const run_explain $ scenario $ seed_arg $ obs_transactions_arg
      $ obs_batch_arg $ domains_arg $ json $ last)

let metrics_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the exposition to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a built-in scenario and print the metrics registry in \
          OpenMetrics text exposition format (counters, gauges, and \
          log2-bucketed histograms with cumulative $(b,_bucket) series), \
          ready to be scraped or pushed to a Prometheus-compatible \
          backend.")
    Term.(
      const run_metrics $ scenario_arg $ seed_arg $ obs_transactions_arg
      $ obs_batch_arg $ domains_arg $ out)

let () =
  let info =
    Cmd.info "ivm-cli" ~version:"1.0.0"
      ~doc:
        "Efficiently updating materialized views (Blakeley, Larson & Tompa, \
         SIGMOD 1986)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            example_cmd; check_cmd; stream_cmd; recover_cmd; query_cmd;
            lint_cmd; fuzz_cmd; stats_cmd; trace_cmd; explain_cmd;
            metrics_cmd;
          ]))
